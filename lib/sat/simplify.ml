type stats = {
  units : int;
  pures : int;
  duplicates : int;
  subsumed : int;
  strengthened : int;
  rounds : int;
}

type result = {
  cnf : Cnf.t;
  forced : (Lit.var * bool) list;
  unsat : bool;
  stats : stats;
}

let pp_stats fmt s =
  Format.fprintf fmt
    "units=%d pures=%d duplicates=%d subsumed=%d strengthened=%d rounds=%d"
    s.units s.pures s.duplicates s.subsumed s.strengthened s.rounds

(* Working representation: sorted literal lists, with an assignment map for
   forced literals. All transformations preserve satisfiability and, thanks
   to [forced], model-extendability. *)

exception Unsat_found

type work = {
  mutable clauses : Lit.t list list;
  assignment : (Lit.var, bool) Hashtbl.t;
  mutable units : int;
  mutable pures : int;
  mutable duplicates : int;
  mutable subsumed : int;
  mutable strengthened : int;
}

let lit_value w l =
  match Hashtbl.find_opt w.assignment (Lit.var l) with
  | None -> 0
  | Some b -> if b = Lit.sign l then 1 else -1

let assign w l =
  match lit_value w l with
  | 1 -> ()
  | -1 -> raise Unsat_found
  | _ -> Hashtbl.replace w.assignment (Lit.var l) (Lit.sign l)

(* remove satisfied clauses, drop false literals, queue fresh units *)
let propagate_round w =
  let changed = ref false in
  let keep = ref [] in
  List.iter
    (fun clause ->
      if List.exists (fun l -> lit_value w l = 1) clause then changed := true
      else
        let remaining = List.filter (fun l -> lit_value w l = 0) clause in
        if List.length remaining < List.length clause then changed := true;
        match remaining with
        | [] -> raise Unsat_found
        | [ l ] ->
            assign w l;
            w.units <- w.units + 1;
            changed := true
        | _ -> keep := remaining :: !keep)
    w.clauses;
  w.clauses <- List.rev !keep;
  !changed

let pure_literal_round w =
  let polarity = Hashtbl.create 64 in
  List.iter
    (List.iter (fun l ->
         let v = Lit.var l in
         let seen = Option.value (Hashtbl.find_opt polarity v) ~default:(false, false) in
         let pos, neg = seen in
         Hashtbl.replace polarity v
           (if Lit.sign l then (true, neg) else (pos, true))))
    w.clauses;
  let changed = ref false in
  Hashtbl.iter
    (fun v (pos, neg) ->
      if pos <> neg && not (Hashtbl.mem w.assignment v) then begin
        assign w (Lit.make v pos);
        w.pures <- w.pures + 1;
        changed := true
      end)
    polarity;
  !changed

let dedupe_round w =
  let seen = Hashtbl.create 256 in
  let keep = ref [] in
  List.iter
    (fun clause ->
      let key = List.sort Lit.compare clause in
      if Hashtbl.mem seen key then w.duplicates <- w.duplicates + 1
      else begin
        Hashtbl.add seen key ();
        keep := key :: !keep
      end)
    w.clauses;
  w.clauses <- List.rev !keep

let subset a b = List.for_all (fun l -> List.mem l b) a

(* subsumption + one pass of self-subsumption, quadratic with an occurrence
   index on the rarest literal to keep it tolerable *)
let subsumption_round w =
  let arr = Array.of_list w.clauses in
  let n = Array.length arr in
  let live = Array.make n true in
  let occ = Hashtbl.create 256 in
  Array.iteri
    (fun i clause ->
      List.iter
        (fun l ->
          Hashtbl.replace occ l (i :: Option.value (Hashtbl.find_opt occ l) ~default:[]))
        clause)
    arr;
  let occurrences l = Option.value (Hashtbl.find_opt occ l) ~default:[] in
  let rarest clause =
    List.fold_left
      (fun best l ->
        match best with
        | None -> Some l
        | Some b ->
            if List.length (occurrences l) < List.length (occurrences b) then Some l
            else best)
      None clause
  in
  let changed = ref false in
  (* subsumption: clause i kills every superset j *)
  Array.iteri
    (fun i clause ->
      if live.(i) then
        match rarest clause with
        | None -> ()
        | Some l ->
            List.iter
              (fun j ->
                if j <> i && live.(j)
                   && List.length arr.(j) >= List.length clause
                   && subset clause arr.(j)
                then begin
                  live.(j) <- false;
                  w.subsumed <- w.subsumed + 1;
                  changed := true
                end)
              (occurrences l))
    arr;
  (* self-subsumption: if (C \ {l}) ⊆ D and ¬l ∈ D, drop ¬l from D *)
  Array.iteri
    (fun i clause ->
      if live.(i) then
        List.iter
          (fun l ->
            let rest = List.filter (fun x -> x <> l) clause in
            List.iter
              (fun j ->
                if j <> i && live.(j) && subset rest arr.(j)
                   && List.mem (Lit.negate l) arr.(j)
                then begin
                  arr.(j) <- List.filter (fun x -> x <> Lit.negate l) arr.(j);
                  w.strengthened <- w.strengthened + 1;
                  changed := true
                end)
              (occurrences (Lit.negate l)))
          clause)
    arr;
  let keep = ref [] in
  Array.iteri (fun i c -> if live.(i) then keep := c :: !keep) arr;
  w.clauses <- List.rev !keep;
  !changed

(* Apply the accumulated assignment without creating new forced literals:
   needed when [max_rounds] stops the loop between an assignment and its
   propagation, so the output never mentions an assigned variable (otherwise
   extending a model with the forced values could break clauses the solver
   satisfied through the stale literal). *)
let final_cleanup w =
  let keep = ref [] in
  List.iter
    (fun clause ->
      if not (List.exists (fun l -> lit_value w l = 1) clause) then
        match List.filter (fun l -> lit_value w l = 0) clause with
        | [] -> raise Unsat_found
        | remaining -> keep := remaining :: !keep)
    w.clauses;
  w.clauses <- List.rev !keep

(* Ingest straight from the arena: one literal list per clause, no
   intermediate per-clause arrays. *)
let clause_lists cnf =
  List.rev
    (Cnf.fold_clauses cnf ~init:[] ~f:(fun acc arena off len ->
         let rec go k lits =
           if k < off then lits else go (k - 1) (arena.(k) :: lits)
         in
         go (off + len - 1) [] :: acc))

let simplify ?on_event ?(max_rounds = 10) cnf =
  let w =
    {
      clauses = clause_lists cnf;
      assignment = Hashtbl.create 64;
      units = 0;
      pures = 0;
      duplicates = 0;
      subsumed = 0;
      strengthened = 0;
    }
  in
  let rounds = ref 0 in
  let unsat =
    try
      let continue = ref true in
      while !continue && !rounds < max_rounds do
        incr rounds;
        let c1 = propagate_round w in
        dedupe_round w;
        let c2 = subsumption_round w in
        let c3 = pure_literal_round w in
        (* pure assignments can satisfy clauses; one more propagation pass
           cleans them up on the next round *)
        continue := c1 || c2 || c3;
        match on_event with
        | None -> ()
        | Some f -> f (Event.Simplify_round !rounds)
      done;
      final_cleanup w;
      false
    with Unsat_found -> true
  in
  let out = Cnf.create () in
  Cnf.ensure_vars out (Cnf.num_vars cnf);
  if not unsat then List.iter (Cnf.add_clause out) w.clauses;
  let forced = Hashtbl.fold (fun v b acc -> (v, b) :: acc) w.assignment [] in
  {
    cnf = out;
    forced = List.sort compare forced;
    unsat;
    stats =
      {
        units = w.units;
        pures = w.pures;
        duplicates = w.duplicates;
        subsumed = w.subsumed;
        strengthened = w.strengthened;
        rounds = !rounds;
      };
  }

let extend_model r model =
  let n = Cnf.num_vars r.cnf in
  let out = Array.make n false in
  Array.iteri (fun v b -> if v < n then out.(v) <- b) model;
  List.iter (fun (v, b) -> if v < n then out.(v) <- b) r.forced;
  out

let solve ?config ?budget cnf =
  let on_event =
    match budget with Some b -> b.Solver.on_event | None -> None
  in
  let r = simplify ?on_event cnf in
  if r.unsat then (Solver.Unsat, r.stats, Stats.create ())
  else
    let result, solver_stats = Solver.solve ?config ?budget r.cnf in
    let result =
      match result with
      | Solver.Sat model -> Solver.Sat (extend_model r model)
      | Solver.Unsat -> Solver.Unsat
      | Solver.Unknown -> Solver.Unknown
      | Solver.Memout -> Solver.Memout
    in
    (result, r.stats, solver_stats)
