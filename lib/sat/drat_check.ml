type error = { step_index : int; reason : string }

let pp_error fmt e =
  Format.fprintf fmt "proof step %d: %s" e.step_index e.reason

(* The checker keeps every clause in occurrence lists indexed by literal and
   runs plain scanning unit propagation with an undo trail. Simplicity over
   speed: it re-derives each addition independently, which is plenty for the
   proof sizes the tests and examples produce. *)
type checker = {
  mutable nvars : int;
  mutable assignment : int array; (* -1 false, 0 undef, 1 true *)
  mutable clauses : (Lit.t array * bool ref) list;
      (* all clauses with a live flag, newest first (deleted = false) *)
}

let create nvars =
  { nvars; assignment = Array.make (max nvars 1) 0; clauses = [] }

let grow st v =
  if v >= st.nvars then begin
    let n = v + 1 in
    let a = Array.make n 0 in
    Array.blit st.assignment 0 a 0 st.nvars;
    st.assignment <- a;
    st.nvars <- n
  end

let add_clause st lits =
  let arr = Array.of_list lits in
  Array.iter (fun l -> grow st (Lit.var l)) arr;
  let live = ref true in
  st.clauses <- (arr, live) :: st.clauses;
  (arr, live)

let delete_clause st lits =
  let target = List.sort Lit.compare lits in
  let rec find = function
    | [] -> false
    | (arr, live) :: rest ->
        if !live && List.sort Lit.compare (Array.to_list arr) = target then begin
          live := false;
          true
        end
        else find rest
  in
  find st.clauses

let value st l =
  let a = st.assignment.(Lit.var l) in
  if Lit.sign l then a else -a

(* Assign the given literals as assumptions and unit-propagate over the live
   clause set. Returns [true] on conflict. Always undoes its assignments. *)
let propagates_to_conflict st assumptions =
  let trail = ref [] in
  let conflict = ref false in
  let assign l =
    match value st l with
    | 1 -> ()
    | -1 -> conflict := true
    | _ ->
        st.assignment.(Lit.var l) <- (if Lit.sign l then 1 else -1);
        trail := l :: !trail
  in
  List.iter assign assumptions;
  let progress = ref true in
  while (not !conflict) && !progress do
    progress := false;
    List.iter
      (fun (arr, live) ->
        if !live && not !conflict then begin
          let satisfied = ref false in
          let unassigned = ref [] in
          Array.iter
            (fun l ->
              match value st l with
              | 1 -> satisfied := true
              | 0 -> unassigned := l :: !unassigned
              | _ -> ())
            arr;
          if not !satisfied then
            match !unassigned with
            | [] -> conflict := true
            | [ l ] ->
                assign l;
                progress := true
            | _ :: _ :: _ -> ()
        end)
      st.clauses
  done;
  List.iter (fun l -> st.assignment.(Lit.var l) <- 0) !trail;
  !conflict

let rup st lits =
  (* a tautological "clause" is trivially derivable *)
  let negated = List.map Lit.negate lits in
  let tauto =
    List.exists (fun l -> List.mem (Lit.negate l) lits) lits
  in
  tauto || propagates_to_conflict st negated

let load cnf =
  let st = create (Cnf.num_vars cnf) in
  Cnf.iter_clauses' cnf ~f:(fun arena off len ->
      ignore (add_clause st (Array.to_list (Array.sub arena off len))));
  st

let is_rup cnf clause = rup (load cnf) clause

let check cnf proof =
  let st = load cnf in
  let steps = Proof.steps proof in
  let rec go i saw_empty = function
    | [] ->
        if saw_empty then Ok ()
        else Error { step_index = i; reason = "trace does not derive the empty clause" }
    | step :: rest -> (
        match step with
        | Proof.Add lits ->
            if not (rup st lits) then
              Error { step_index = i; reason = "added clause is not RUP" }
            else begin
              ignore (add_clause st lits);
              if lits = [] then Ok () (* empty clause derived; trace verified *)
              else go (i + 1) saw_empty rest
            end
        | Proof.Delete lits ->
            if delete_clause st lits then go (i + 1) saw_empty rest
            else
              Error
                { step_index = i; reason = "deletion of a clause not present" })
  in
  go 0 false steps
