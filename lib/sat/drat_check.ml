(* Watched-literal forward checker for DRAT traces.

   Clauses live in one flat literal arena (the same layout idea as [Cnf]):
   per-clause offset/length indexes, a liveness flag, and two watched
   literals kept in the first two arena slots of each clause. Propagation is
   incremental: facts derived at the top level go onto a persistent trail
   that survives across proof steps, and each RUP query only assumes the
   candidate clause's negation on top of that trail and undoes exactly its
   own assignments. Deletions unwatch eagerly — O(the two watch lists) —
   and full occurrence lists (maintained per literal, compacted lazily)
   serve the RAT fallback, which makes the checker decide DRAT rather than
   just RUP. *)

type stats = {
  mutable additions : int;
  mutable rup_steps : int;
  mutable rat_steps : int;
  mutable deletions : int;
  mutable ignored_deletions : int;
  mutable propagations : int;
}

let fresh_stats () =
  {
    additions = 0;
    rup_steps = 0;
    rat_steps = 0;
    deletions = 0;
    ignored_deletions = 0;
    propagations = 0;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "additions=%d (rup %d, rat %d) deletions=%d (ignored %d) propagations=%d"
    s.additions s.rup_steps s.rat_steps s.deletions s.ignored_deletions
    s.propagations

type error =
  | Bad_step of { step_index : int; reason : string }
  | No_empty_clause of { num_steps : int }

let pp_error fmt = function
  | Bad_step { step_index; reason } ->
      Format.fprintf fmt "proof step %d: %s" step_index reason
  | No_empty_clause { num_steps } ->
      Format.fprintf fmt
        "proof trace (%d steps) does not derive the empty clause" num_steps

type checker = {
  mutable nvars : int;
  mutable assignment : int array; (* -1 false, 0 undef, 1 true; by var *)
  (* clause arena *)
  mutable arena : int array;
  mutable fill : int;
  offs : int Vec.t; (* clause id -> arena offset *)
  lens : int Vec.t;
  live : bool Vec.t;
  (* indexed by literal: watch lists fire when the literal becomes true
     (so [watches.(l)] holds clauses watching [negate l], as in [Solver]);
     [occs.(l)] holds every clause containing [l], for the RAT fallback *)
  mutable watches : int Vec.t array;
  mutable occs : int Vec.t array;
  (* persistent top-level trail; entries above a RUP query's mark are
     temporary and undone when the query finishes *)
  trail : int Vec.t;
  mutable qhead : int;
  mutable contradiction : bool; (* top-level conflict: UNSAT established *)
  (* sorted-deduped literal list -> live clause ids, for deletions *)
  index : (Lit.t list, int list ref) Hashtbl.t;
  stats : stats;
}

let create nvars =
  let nvars = max nvars 1 in
  {
    nvars;
    assignment = Array.make nvars 0;
    arena = Array.make 256 0;
    fill = 0;
    offs = Vec.create ~dummy:0 ();
    lens = Vec.create ~dummy:0 ();
    live = Vec.create ~dummy:false ();
    watches = Array.init (2 * nvars) (fun _ -> Vec.create ~dummy:0 ());
    occs = Array.init (2 * nvars) (fun _ -> Vec.create ~dummy:0 ());
    trail = Vec.create ~dummy:0 ();
    qhead = 0;
    contradiction = false;
    index = Hashtbl.create 64;
    stats = fresh_stats ();
  }

let grow st v =
  if v >= st.nvars then begin
    let n = max (v + 1) (2 * st.nvars) in
    let a = Array.make n 0 in
    Array.blit st.assignment 0 a 0 st.nvars;
    st.assignment <- a;
    let w = Array.init (2 * n) (fun _ -> Vec.create ~dummy:0 ()) in
    Array.blit st.watches 0 w 0 (2 * st.nvars);
    st.watches <- w;
    let o = Array.init (2 * n) (fun _ -> Vec.create ~dummy:0 ()) in
    Array.blit st.occs 0 o 0 (2 * st.nvars);
    st.occs <- o;
    st.nvars <- n
  end

let ensure_arena st extra =
  if st.fill + extra > Array.length st.arena then begin
    let n = max (st.fill + extra) (2 * Array.length st.arena) in
    let a = Array.make n 0 in
    Array.blit st.arena 0 a 0 st.fill;
    st.arena <- a
  end

let value st l =
  let a = st.assignment.(Lit.var l) in
  if Lit.sign l then a else -a

let assign st l =
  st.assignment.(Lit.var l) <- (if Lit.sign l then 1 else -1);
  Vec.push st.trail l

(* Watched-literal propagation from [qhead]; returns [true] on conflict.
   On conflict the queue is drained so the caller can undo cleanly. *)
let propagate st =
  let conflict = ref false in
  while (not !conflict) && st.qhead < Vec.size st.trail do
    let p = Vec.get st.trail st.qhead in
    st.qhead <- st.qhead + 1;
    st.stats.propagations <- st.stats.propagations + 1;
    let ws = st.watches.(p) in
    let n = Vec.size ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let cid = Vec.get ws !i in
      incr i;
      if not (Vec.get st.live cid) then () (* unwatched lazily if ever seen *)
      else begin
        let off = Vec.get st.offs cid in
        let len = Vec.get st.lens cid in
        let false_lit = Lit.negate p in
        if st.arena.(off) = false_lit then begin
          st.arena.(off) <- st.arena.(off + 1);
          st.arena.(off + 1) <- false_lit
        end;
        let first = st.arena.(off) in
        if value st first = 1 then begin
          Vec.set ws !j cid;
          incr j
        end
        else begin
          (* find a replacement watch among slots 2.. *)
          let rec find k =
            if k >= off + len then -1
            else if value st st.arena.(k) <> -1 then k
            else find (k + 1)
          in
          let k = find (off + 2) in
          if k >= 0 then begin
            st.arena.(off + 1) <- st.arena.(k);
            st.arena.(k) <- false_lit;
            Vec.push st.watches.(Lit.negate st.arena.(off + 1)) cid
          end
          else begin
            (* unit or conflicting *)
            Vec.set ws !j cid;
            incr j;
            if value st first = -1 then begin
              conflict := true;
              st.qhead <- Vec.size st.trail;
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr i;
                incr j
              done
            end
            else assign st first
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

let undo_to st mark =
  while Vec.size st.trail > mark do
    let l = Vec.pop st.trail in
    st.assignment.(Lit.var l) <- 0
  done;
  st.qhead <- min st.qhead mark

let clause_key lits = List.sort_uniq Lit.compare lits

(* Append the clause to the arena and register it everywhere; then account
   for it under the persistent assignment: a falsified clause establishes
   the contradiction, a unit is asserted on the persistent trail and
   propagated, anything longer gets two non-false watches. *)
let add_and_install st lits =
  List.iter (fun l -> grow st (Lit.var l)) lits;
  let len = List.length lits in
  ensure_arena st len;
  let off = st.fill in
  List.iter
    (fun l ->
      st.arena.(st.fill) <- l;
      st.fill <- st.fill + 1)
    lits;
  let cid = Vec.size st.offs in
  Vec.push st.offs off;
  Vec.push st.lens len;
  Vec.push st.live true;
  List.iter (fun l -> Vec.push st.occs.(l) cid) lits;
  let key = clause_key lits in
  (match Hashtbl.find_opt st.index key with
  | Some ids -> ids := cid :: !ids
  | None -> Hashtbl.add st.index key (ref [ cid ]));
  (* move up to two non-false literals into the watch slots *)
  let found = ref 0 in
  let k = ref off in
  while !found < 2 && !k < off + len do
    if value st st.arena.(!k) <> -1 then begin
      let tmp = st.arena.(off + !found) in
      st.arena.(off + !found) <- st.arena.(!k);
      st.arena.(!k) <- tmp;
      incr found
    end;
    incr k
  done;
  if !found = 0 then st.contradiction <- true
  else begin
    if len >= 2 then begin
      Vec.push st.watches.(Lit.negate st.arena.(off)) cid;
      Vec.push st.watches.(Lit.negate st.arena.(off + 1)) cid
    end;
    if !found = 1 && value st st.arena.(off) = 0 then begin
      assign st st.arena.(off);
      if propagate st then st.contradiction <- true
    end
  end

(* RUP: assume the negation of every literal on top of the persistent
   trail; derivable iff propagation conflicts. Tautologies and clauses
   already satisfied at the top level conflict immediately. *)
let rup st lits =
  st.contradiction
  ||
  let mark = Vec.size st.trail in
  let exception Conflict in
  let conflict =
    match
      List.iter
        (fun l ->
          match value st l with
          | 1 -> raise Conflict
          | -1 -> ()
          | _ -> assign st (Lit.negate l))
        lits
    with
    | () -> propagate st
    | exception Conflict -> true
  in
  undo_to st mark;
  conflict

(* RAT on the first literal (the DRAT pivot convention): every live clause
   containing the pivot's negation must yield a RUP resolvent. Occurrence
   lists are compacted in passing. *)
let rat st lits =
  match lits with
  | [] -> false
  | pivot :: _ ->
      let neg = Lit.negate pivot in
      if Lit.var neg >= st.nvars then true (* no clause can contain it *)
      else begin
        let occ = st.occs.(neg) in
        let ok = ref true in
        let j = ref 0 in
        for i = 0 to Vec.size occ - 1 do
          let cid = Vec.get occ i in
          if Vec.get st.live cid then begin
            Vec.set occ !j cid;
            incr j;
            if !ok then begin
              let off = Vec.get st.offs cid in
              let len = Vec.get st.lens cid in
              let resolvent = ref (List.filter (fun l -> l <> pivot) lits) in
              for k = off to off + len - 1 do
                if st.arena.(k) <> neg then resolvent := st.arena.(k) :: !resolvent
              done;
              if not (rup st !resolvent) then ok := false
            end
          end
        done;
        Vec.shrink occ !j;
        !ok
      end

(* Deleting a clause that is not present is a tolerated no-op (the
   drat-trim convention): solvers simplify at load time, so traces
   legitimately reference clauses the checker never saw. Deletions of unit
   clauses do not retract their propagations (also as in drat-trim). *)
let delete st lits =
  let key = clause_key lits in
  match Hashtbl.find_opt st.index key with
  | None -> st.stats.ignored_deletions <- st.stats.ignored_deletions + 1
  | Some ids -> (
      match !ids with
      | [] -> st.stats.ignored_deletions <- st.stats.ignored_deletions + 1
      | cid :: rest ->
          ids := rest;
          Vec.set st.live cid false;
          let len = Vec.get st.lens cid in
          if len >= 2 then begin
            let off = Vec.get st.offs cid in
            let unwatch l =
              Vec.filter_in_place (fun c -> c <> cid)
                st.watches.(Lit.negate l)
            in
            unwatch st.arena.(off);
            unwatch st.arena.(off + 1)
          end;
          st.stats.deletions <- st.stats.deletions + 1)

let load cnf =
  let st = create (Cnf.num_vars cnf) in
  Cnf.iter_clauses' cnf ~f:(fun arena off len ->
      if not st.contradiction then
        add_and_install st (Array.to_list (Array.sub arena off len)));
  st

let grow_for st lits = List.iter (fun l -> grow st (Lit.var l)) lits

let is_rup cnf clause =
  let st = load cnf in
  grow_for st clause;
  rup st clause

let is_rat cnf clause =
  let st = load cnf in
  grow_for st clause;
  rup st clause || rat st clause

let check cnf proof =
  let st = load cnf in
  let steps = Proof.steps proof in
  let num_steps = List.length steps in
  let rec go i = function
    | _ when st.contradiction -> Ok st.stats
    | [] -> Error (No_empty_clause { num_steps })
    | step :: rest -> (
        match step with
        | Proof.Add lits ->
            st.stats.additions <- st.stats.additions + 1;
            grow_for st lits;
            if rup st lits then begin
              st.stats.rup_steps <- st.stats.rup_steps + 1;
              add_and_install st lits;
              go (i + 1) rest
            end
            else if rat st lits then begin
              st.stats.rat_steps <- st.stats.rat_steps + 1;
              add_and_install st lits;
              go (i + 1) rest
            end
            else
              Error
                (Bad_step
                   { step_index = i; reason = "added clause is neither RUP nor RAT" })
        | Proof.Delete lits ->
            delete st lits;
            go (i + 1) rest)
  in
  go 0 steps

(* ------------------------------------------------------------------ *)
(* Reference checker: the original list-scanning implementation, kept as
   a differential-testing oracle and as the baseline the bench harness
   measures the watched-literal checker against. Quadratic: every RUP
   query re-propagates over the whole clause list. *)

module Reference = struct
  type rstate = {
    mutable rnvars : int;
    mutable rassignment : int array;
    mutable rclauses : (Lit.t array * bool ref) list;
  }

  let rcreate nvars =
    { rnvars = nvars; rassignment = Array.make (max nvars 1) 0; rclauses = [] }

  let rgrow st v =
    if v >= st.rnvars then begin
      let n = v + 1 in
      let a = Array.make n 0 in
      Array.blit st.rassignment 0 a 0 st.rnvars;
      st.rassignment <- a;
      st.rnvars <- n
    end

  let radd st lits =
    let arr = Array.of_list lits in
    Array.iter (fun l -> rgrow st (Lit.var l)) arr;
    st.rclauses <- (arr, ref true) :: st.rclauses

  let rdelete st lits =
    let target = List.sort Lit.compare lits in
    let rec find = function
      | [] -> false
      | (arr, live) :: rest ->
          if !live && List.sort Lit.compare (Array.to_list arr) = target then begin
            live := false;
            true
          end
          else find rest
    in
    find st.rclauses

  let rvalue st l =
    let a = st.rassignment.(Lit.var l) in
    if Lit.sign l then a else -a

  let propagates_to_conflict st assumptions =
    let trail = ref [] in
    let conflict = ref false in
    let assign l =
      match rvalue st l with
      | 1 -> ()
      | -1 -> conflict := true
      | _ ->
          st.rassignment.(Lit.var l) <- (if Lit.sign l then 1 else -1);
          trail := l :: !trail
    in
    List.iter assign assumptions;
    let progress = ref true in
    while (not !conflict) && !progress do
      progress := false;
      List.iter
        (fun (arr, live) ->
          if !live && not !conflict then begin
            let satisfied = ref false in
            let unassigned = ref [] in
            Array.iter
              (fun l ->
                match rvalue st l with
                | 1 -> satisfied := true
                | 0 -> unassigned := l :: !unassigned
                | _ -> ())
              arr;
            if not !satisfied then
              match !unassigned with
              | [] -> conflict := true
              | [ l ] ->
                  assign l;
                  progress := true
              | _ :: _ :: _ -> ()
          end)
        st.rclauses
    done;
    List.iter (fun l -> st.rassignment.(Lit.var l) <- 0) !trail;
    !conflict

  let rrup st lits =
    let negated = List.map Lit.negate lits in
    let tauto = List.exists (fun l -> List.mem (Lit.negate l) lits) lits in
    tauto || propagates_to_conflict st negated
end

let check_reference cnf proof =
  let open Reference in
  let st = rcreate (Cnf.num_vars cnf) in
  Cnf.iter_clauses' cnf ~f:(fun arena off len ->
      radd st (Array.to_list (Array.sub arena off len)));
  let steps = Proof.steps proof in
  let num_steps = List.length steps in
  let rec go i saw_empty = function
    | [] ->
        if saw_empty then Ok () else Error (No_empty_clause { num_steps })
    | step :: rest -> (
        match step with
        | Proof.Add lits ->
            if not (rrup st lits) then
              Error (Bad_step { step_index = i; reason = "added clause is not RUP" })
            else begin
              radd st lits;
              if lits = [] then Ok () else go (i + 1) saw_empty rest
            end
        | Proof.Delete lits ->
            ignore (rdelete st lits);
            go (i + 1) saw_empty rest)
  in
  go 0 false steps
