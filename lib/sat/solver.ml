type restart_scheme = Luby_restarts of int | Geometric of int * float

type config = {
  var_decay : float;
  clause_decay : float;
  restart : restart_scheme;
  random_var_freq : float;
  phase_saving : bool;
  seed : int;
  inprocess_every : int;
  inprocess_budget : int;
}

let minisat_like =
  {
    var_decay = 0.95;
    clause_decay = 0.999;
    restart = Luby_restarts 100;
    random_var_freq = 0.0;
    phase_saving = true;
    seed = 91648253;
    inprocess_every = 8;
    inprocess_budget = 12_000;
  }

let siege_like =
  {
    var_decay = 0.85;
    clause_decay = 0.999;
    restart = Geometric (100, 1.3);
    random_var_freq = 0.01;
    phase_saving = true;
    seed = 2007;
    inprocess_every = 8;
    inprocess_budget = 12_000;
  }

let default = minisat_like

type budget = {
  max_conflicts : int option;
  max_seconds : float option;
  max_memory_mb : int option;
  interrupt : (unit -> bool) option;
  poll_every : int;
  on_event : (Event.t -> unit) option;
}

let default_poll_interval = 256

let no_budget =
  {
    max_conflicts = None;
    max_seconds = None;
    max_memory_mb = None;
    interrupt = None;
    poll_every = default_poll_interval;
    on_event = None;
  }

let conflict_budget n = { no_budget with max_conflicts = Some n }
let time_budget s = { no_budget with max_seconds = Some s }
let memory_budget mb = { no_budget with max_memory_mb = Some mb }
let interruptible f budget = { budget with interrupt = Some f }
let with_poll_interval n budget = { budget with poll_every = max 1 n }
let with_memory_limit mb budget = { budget with max_memory_mb = Some mb }
let with_event_hook f budget = { budget with on_event = Some f }

(* [Gc.quick_stat] reads the major-heap size without walking the heap, so it
   is cheap enough for the conflict-poll loop. In OCaml 5 the major heap is
   shared by all domains: the bound is on the whole process image, which is
   exactly what an unattended sweep needs to survive an exploding clause
   database without the OOM killer taking down its sibling domains. *)
let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let words_to_megabytes words =
  float_of_int words *. float_of_int (Sys.word_size / 8) /. (1024. *. 1024.)


type result = Sat of bool array | Unsat | Unknown | Memout

(* Deterministic xorshift64 RNG so runs are reproducible across machines. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int (if seed = 0 then 88172645463325252 else seed) }

  let next t =
    let x = t.state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    t.state <- x;
    x

  let float t =
    let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
    float_of_int bits /. float_of_int (1 lsl 53)

  let int t bound = int_of_float (float t *. float_of_int bound)
end

(* Watcher lists: packed (blocker, cref) int pairs in a flat array, two
   slots per watcher. The blocker is some other literal of the clause; when
   it is already true the visit skips the clause dereference entirely, which
   is the common case on dense instances (MiniSat/Glucose blocker trick).
   Hand-rolled rather than an int Vec so the hot loop indexes one array with
   no per-element bounds ceremony. *)
type wlist = { mutable wdata : int array; mutable wsize : int }

let wl_create () = { wdata = [||]; wsize = 0 }

let wl_push w blocker cref =
  let cap = Array.length w.wdata in
  if w.wsize + 2 > cap then begin
    let ndata = Array.make (max 8 (2 * cap)) 0 in
    Array.blit w.wdata 0 ndata 0 w.wsize;
    w.wdata <- ndata
  end;
  w.wdata.(w.wsize) <- blocker;
  w.wdata.(w.wsize + 1) <- cref;
  w.wsize <- w.wsize + 2

let wl_remove w cref =
  let i = ref 0 in
  while !i < w.wsize && w.wdata.(!i + 1) <> cref do
    i := !i + 2
  done;
  if !i < w.wsize then begin
    w.wdata.(!i) <- w.wdata.(w.wsize - 2);
    w.wdata.(!i + 1) <- w.wdata.(w.wsize - 1);
    w.wsize <- w.wsize - 2
  end

type state = {
  cfg : config;
  nvars : int;
  (* clause database: all clauses live in one flat arena, referenced by
     integer crefs; [db] is replaced wholesale on compaction *)
  mutable db : Clause.t;
  clauses : Clause.cref Vec.t;
  learnts : Clause.cref Vec.t;
  watches : wlist array; (* indexed by literal *)
  (* assignment *)
  assigns : int array; (* -1 false, 0 undef, 1 true; indexed by var *)
  level : int array;
  reason : Clause.cref array; (* cref_undef when none *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* heuristics *)
  activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  order : Heap.t;
  phase : bool array;
  seen : bool array;
  rng : Rng.t;
  stats : Stats.t;
  proof : Proof.t option;
  mutable ok : bool; (* false once level-0 conflict is established *)
}

let value_var st v = st.assigns.(v)

let value_lit st l =
  let a = st.assigns.(Lit.var l) in
  if Lit.sign l then a else -a

let decision_level st = Vec.size st.trail_lim

let create cfg nvars proof =
  let activity = Array.make (max nvars 1) 0. in
  {
    cfg;
    nvars;
    db = Clause.create ();
    clauses = Vec.create ~dummy:Clause.cref_undef ();
    learnts = Vec.create ~dummy:Clause.cref_undef ();
    watches = Array.init (max (2 * nvars) 1) (fun _ -> wl_create ());
    assigns = Array.make (max nvars 1) 0;
    level = Array.make (max nvars 1) 0;
    reason = Array.make (max nvars 1) Clause.cref_undef;
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    activity;
    var_inc = 1.0;
    cla_inc = 1.0;
    order = Heap.create ~scores:activity;
    phase = Array.make (max nvars 1) false;
    seen = Array.make (max nvars 1) false;
    rng = Rng.create cfg.seed;
    stats = Stats.create ();
    proof;
    ok = true;
  }

let var_rescale st =
  for v = 0 to st.nvars - 1 do
    st.activity.(v) <- st.activity.(v) *. 1e-100
  done;
  st.var_inc <- st.var_inc *. 1e-100

let var_bump st v =
  st.activity.(v) <- st.activity.(v) +. st.var_inc;
  if st.activity.(v) > 1e100 then var_rescale st;
  Heap.rescore st.order v

let var_decay_tick st = st.var_inc <- st.var_inc /. st.cfg.var_decay

let cla_bump st c =
  let a = Clause.activity st.db c +. st.cla_inc in
  Clause.set_activity st.db c a;
  if a > 1e20 then begin
    Vec.iter
      (fun d -> Clause.set_activity st.db d (Clause.activity st.db d *. 1e-20))
      st.learnts;
    st.cla_inc <- st.cla_inc *. 1e-20
  end

let cla_decay_tick st = st.cla_inc <- st.cla_inc /. st.cfg.clause_decay

let enqueue st l reason =
  let v = Lit.var l in
  assert (st.assigns.(v) = 0);
  st.assigns.(v) <- (if Lit.sign l then 1 else -1);
  st.level.(v) <- decision_level st;
  st.reason.(v) <- reason;
  Vec.push st.trail l;
  st.stats.Stats.propagations <- st.stats.Stats.propagations + 1

(* The two watched literals of clause [c] are always its arena positions 0
   and 1, and [c] sits exactly in the watch lists of their negations; every
   attach, detach and in-place literal swap below preserves this. The
   blocker stored alongside is the other watched literal (or, after a
   blocker refresh in [propagate], the clause's first literal). *)
let attach_clause st c =
  let db = st.db in
  let l0 = Clause.lit db c 0 and l1 = Clause.lit db c 1 in
  wl_push st.watches.(Lit.negate l0) l1 c;
  wl_push st.watches.(Lit.negate l1) l0 c

let detach_clause st c =
  let db = st.db in
  wl_remove st.watches.(Lit.negate (Clause.lit db c 0)) c;
  wl_remove st.watches.(Lit.negate (Clause.lit db c 1)) c

(* Propagate all enqueued facts; returns the conflicting cref, or
   [Clause.cref_undef]. The hot loop works on the raw arena and raw watcher
   arrays: a watcher visit whose blocker is satisfied touches no clause
   memory at all, and the clause path reads literals from one contiguous
   int array. No allocation on any path. *)
let propagate st =
  let conflict = ref Clause.cref_undef in
  let arena = Clause.raw st.db in
  let assigns = st.assigns in
  let value l = if l land 1 = 0 then assigns.(l lsr 1) else -assigns.(l lsr 1) in
  while !conflict = Clause.cref_undef && st.qhead < Vec.size st.trail do
    let p = Vec.get st.trail st.qhead in
    st.qhead <- st.qhead + 1;
    let false_lit = Lit.negate p in
    let ws = st.watches.(p) in
    let wdata = ws.wdata in
    let n = ws.wsize in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let blocker = wdata.(!i) in
      let cr = wdata.(!i + 1) in
      i := !i + 2;
      if value blocker = 1 then begin
        wdata.(!j) <- blocker;
        wdata.(!j + 1) <- cr;
        j := !j + 2
      end
      else begin
        let base = cr + Clause.header_words in
        (* make sure the false literal is at position 1 *)
        let l0 = arena.(base) in
        if l0 = false_lit then begin
          arena.(base) <- arena.(base + 1);
          arena.(base + 1) <- l0
        end;
        let first = arena.(base) in
        if first <> blocker && value first = 1 then begin
          (* satisfied: keep the watcher, refresh the blocker *)
          wdata.(!j) <- first;
          wdata.(!j + 1) <- cr;
          j := !j + 2
        end
        else begin
          (* find a replacement watch among positions 2.. *)
          let size = arena.(cr) in
          let k = ref 2 in
          while !k < size && value arena.(base + !k) = -1 do
            incr k
          done;
          if !k < size then begin
            arena.(base + 1) <- arena.(base + !k);
            arena.(base + !k) <- false_lit;
            (* never the list being traversed: the new watch is non-false,
               while [negate p] is false by construction *)
            wl_push st.watches.(Lit.negate arena.(base + 1)) first cr
          end
          else begin
            (* clause is unit or conflicting *)
            wdata.(!j) <- first;
            wdata.(!j + 1) <- cr;
            j := !j + 2;
            if value first = -1 then begin
              conflict := cr;
              st.qhead <- Vec.size st.trail;
              while !i < n do
                wdata.(!j) <- wdata.(!i);
                wdata.(!j + 1) <- wdata.(!i + 1);
                i := !i + 2;
                j := !j + 2
              done
            end
            else enqueue st first cr
          end
        end
      end
    done;
    ws.wsize <- !j
  done;
  !conflict

let cancel_until st lvl =
  if decision_level st > lvl then begin
    let bound = Vec.get st.trail_lim lvl in
    let rec pop () =
      if Vec.size st.trail > bound then begin
        let l = Vec.pop st.trail in
        let v = Lit.var l in
        if st.cfg.phase_saving then st.phase.(v) <- Lit.sign l;
        st.assigns.(v) <- 0;
        st.reason.(v) <- Clause.cref_undef;
        if not (Heap.in_heap st.order v) then Heap.insert st.order v;
        pop ()
      end
    in
    pop ();
    st.qhead <- Vec.size st.trail;
    Vec.shrink st.trail_lim lvl
  end

(* Every decision level — free decision or assumption — goes through here,
   so [max_decision_level] also counts assumption ladders (server sessions
   open one level per assumption before any free decision). *)
let new_decision_level st =
  Vec.push st.trail_lim (Vec.size st.trail);
  let dl = Vec.size st.trail_lim in
  if dl > st.stats.Stats.max_decision_level then
    st.stats.Stats.max_decision_level <- dl

(* First-UIP conflict analysis with basic (non-recursive) minimisation.
   Returns the learnt clause (asserting literal first, a literal of the
   second-highest level at index 1), the backtrack level and the LBD. *)
let analyze st confl =
  let db = st.db in
  let learnt = ref [] in
  let to_clear = ref [] in
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size st.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = !confl in
    assert (c <> Clause.cref_undef);
    if Clause.learnt db c then cla_bump st c;
    let start = if !p = -1 then 0 else 1 in
    for jj = start to Clause.size db c - 1 do
      let q = Clause.lit db c jj in
      let v = Lit.var q in
      if (not st.seen.(v)) && st.level.(v) > 0 then begin
        var_bump st v;
        st.seen.(v) <- true;
        to_clear := v :: !to_clear;
        if st.level.(v) >= decision_level st then incr path_c
        else learnt := q :: !learnt
      end
    done;
    (* select the next trail literal to resolve on *)
    while not st.seen.(Lit.var (Vec.get st.trail !index)) do
      decr index
    done;
    p := Vec.get st.trail !index;
    decr index;
    confl := st.reason.(Lit.var !p);
    st.seen.(Lit.var !p) <- false;
    decr path_c;
    if !path_c = 0 then continue := false
  done;
  let uip = Lit.negate !p in
  (* basic minimisation: drop literals implied by the rest of the clause *)
  let keep q =
    let v = Lit.var q in
    let r = st.reason.(v) in
    r = Clause.cref_undef
    ||
    let rec any k =
      k < Clause.size db r
      &&
      let w = Lit.var (Clause.lit db r k) in
      ((not st.seen.(w)) && st.level.(w) > 0) || any (k + 1)
    in
    any 1
  in
  let minimised = List.filter keep !learnt in
  List.iter (fun v -> st.seen.(v) <- false) !to_clear;
  let lits = uip :: minimised in
  st.stats.Stats.learnt_literals <-
    st.stats.Stats.learnt_literals + List.length lits;
  (* compute backtrack level and move a max-level literal to index 1 *)
  match lits with
  | [ _ ] -> (Array.of_list lits, 0, 1)
  | first :: rest ->
      let arr = Array.of_list (first :: rest) in
      let max_i = ref 1 in
      for k = 2 to Array.length arr - 1 do
        if st.level.(Lit.var arr.(k)) > st.level.(Lit.var arr.(!max_i)) then
          max_i := k
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!max_i);
      arr.(!max_i) <- tmp;
      let blevel = st.level.(Lit.var arr.(1)) in
      (* LBD: distinct decision levels in the clause *)
      let module IS = Set.Make (Int) in
      let lbd =
        Array.fold_left
          (fun acc l -> IS.add st.level.(Lit.var l) acc)
          IS.empty arr
        |> IS.cardinal
      in
      (arr, blevel, lbd)
  | [] -> assert false

let locked st c =
  let db = st.db in
  Clause.size db c > 0
  &&
  let l0 = Clause.lit db c 0 in
  value_lit st l0 = 1 && st.reason.(Lit.var l0) = c

let record_proof_add st lits =
  match st.proof with Some p -> Proof.add p lits | None -> ()

(* Array variants convert to the proof's list representation only when a
   proof is actually being recorded, so proof-less solving never pays the
   per-conflict list allocation. *)
let record_proof_add_arr st lits =
  match st.proof with Some p -> Proof.add_array p lits | None -> ()

let record_proof_delete st c =
  match st.proof with
  | Some p -> Proof.delete p (Clause.to_list st.db c)
  | None -> ()

(* Compact the clause arena: copy live clauses into a fresh arena (leaving
   forwarding pointers behind), remap the clause lists and locked reasons,
   and rebuild the watch lists. Nothing else holds crefs, so after this the
   arena contains no dead words and watchers reference live clauses only —
   the invariant [propagate] relies on to skip any deleted-check. *)
let gc st =
  let db = st.db in
  let live = Clause.fill db - Clause.wasted db in
  let ndb = Clause.create ~capacity:(max live 16) () in
  let remap vec =
    for i = 0 to Vec.size vec - 1 do
      Vec.set vec i (Clause.reloc ~src:db ~dst:ndb (Vec.get vec i))
    done
  in
  remap st.clauses;
  remap st.learnts;
  for v = 0 to st.nvars - 1 do
    let r = st.reason.(v) in
    if st.assigns.(v) <> 0 && r <> Clause.cref_undef then
      (* deleted reasons can only back level-0 literals (inprocessing runs
         at level 0; reduce_db never deletes locked clauses), and level-0
         reasons are never dereferenced — drop them *)
      st.reason.(v) <-
        (if Clause.deleted db r then Clause.cref_undef
         else Clause.reloc ~src:db ~dst:ndb r)
    else st.reason.(v) <- Clause.cref_undef
  done;
  st.db <- ndb;
  Array.iter (fun w -> w.wsize <- 0) st.watches;
  Vec.iter (fun c -> attach_clause st c) st.clauses;
  Vec.iter (fun c -> attach_clause st c) st.learnts

let reduce_db st =
  let db = st.db in
  (* Sort learnts: prefer deleting low-activity, high-LBD clauses. *)
  let arr = Array.init (Vec.size st.learnts) (Vec.get st.learnts) in
  Array.sort
    (fun a b ->
      compare
        (Clause.activity db a, -Clause.lbd db a)
        (Clause.activity db b, -Clause.lbd db b))
    arr;
  let n = Array.length arr in
  let limit = n / 2 in
  let deleted = ref 0 in
  Array.iteri
    (fun idx c ->
      if
        idx < limit
        && Clause.size db c > 2
        && (not (locked st c))
        && Clause.lbd db c > 2
      then begin
        record_proof_delete st c;
        Clause.set_deleted db c;
        incr deleted
      end)
    arr;
  Vec.filter_in_place (fun c -> not (Clause.deleted db c)) st.learnts;
  st.stats.Stats.deleted_clauses <- st.stats.Stats.deleted_clauses + !deleted;
  gc st

let pick_branch_var st =
  let random_pick () =
    if st.cfg.random_var_freq > 0.
       && Rng.float st.rng < st.cfg.random_var_freq
       && st.nvars > 0
    then
      let v = Rng.int st.rng st.nvars in
      if value_var st v = 0 then Some v else None
    else None
  in
  match random_pick () with
  | Some v -> Some v
  | None ->
      let rec next () =
        if Heap.is_empty st.order then None
        else
          let v = Heap.remove_max st.order in
          if value_var st v = 0 then Some v else next ()
      in
      next ()

(* Geometric limits overflow float range quickly (inc^k); [int_of_float]
   of an out-of-range float is unspecified, so clamp to [max_int]. *)
let restart_limit_of_config cfg k =
  match cfg.restart with
  | Luby_restarts base -> base * Luby.get k
  | Geometric (first, inc) ->
      let f = float_of_int first *. (inc ** float_of_int k) in
      if f >= float_of_int max_int then max_int else int_of_float f

let restart_limit st k = restart_limit_of_config st.cfg k

let extract_model st =
  Array.init st.nvars (fun v -> st.assigns.(v) > 0)

exception Found_unsat
exception Assumption_failed
exception Out_of_budget
exception Out_of_memory_budget

(* Load the problem clauses into a fresh state; level-0 units go straight
   onto the trail, and [st.ok] turns false on an immediate conflict. Clause
   views come straight from the CNF arena: satisfied clauses are skipped and
   false literals dropped in a counting pass, and survivors are copied
   directly into the solver's clause arena. *)
let load_clauses st cnf =
  let scratch = ref [||] in
  Cnf.iter_clauses' cnf ~f:(fun arena off len ->
      if st.ok then begin
        let satisfied = ref false in
        let keep = ref 0 in
        for k = off to off + len - 1 do
          match value_lit st arena.(k) with
          | 1 -> satisfied := true
          | 0 -> incr keep
          | _ -> ()
        done;
        if not !satisfied then
          if !keep = 0 then begin
            record_proof_add st [];
            st.ok <- false
          end
          else if !keep = 1 then begin
            let unit = ref 0 in
            for k = off to off + len - 1 do
              if value_lit st arena.(k) = 0 then unit := arena.(k)
            done;
            enqueue st !unit Clause.cref_undef;
            if propagate st <> Clause.cref_undef then begin
              record_proof_add st [];
              st.ok <- false
            end
          end
          else begin
            if Array.length !scratch < !keep then
              scratch := Array.make (max !keep 16) 0;
            let out = !scratch in
            let j = ref 0 in
            for k = off to off + len - 1 do
              let l = arena.(k) in
              if value_lit st l = 0 then begin
                out.(!j) <- l;
                incr j
              end
            done;
            let c = Clause.alloc st.db (Array.sub out 0 !keep) in
            Vec.push st.clauses c;
            attach_clause st c
          end
      end);
  for v = 0 to st.nvars - 1 do
    if value_var st v = 0 then Heap.insert st.order v
  done

type solver = {
  st : state;
  mutable max_learnts : int;
  mutable restart_count : int;
  mutable vivify_head : int;
}

type query_result =
  | Q_sat of bool array
  | Q_unsat
  | Q_unknown
  | Q_memout

let create ?(config = default) ?proof cnf =
  let st = create config (Cnf.num_vars cnf) proof in
  load_clauses st cnf;
  {
    st;
    max_learnts = max 1000 (Vec.size st.clauses / 3);
    restart_count = 0;
    vivify_head = 0;
  }

let solver_stats s = s.st.stats

(* ---------- bounded inprocessing ----------

   Runs between restarts, at decision level 0, under an explicit work
   budget ([cfg.inprocess_budget], roughly propagations). Two rewriting
   rules, both producing RUP clauses so certified runs stay checkable:

   - self-subsumption: if (C \ {l}) ⊆ D and ¬l ∈ D then D' = D \ {¬l} is
     the resolvent of C and D on l, hence implied and RUP (assuming ¬D'
     makes C force l, falsifying D).
   - vivification: detach C = (l1 ... lk), assume ¬l1, ¬l2, ... in order;
     a false li is dropped (propagation from the earlier negations already
     derives ¬li), a true li or a propagation conflict closes a shorter
     prefix clause that is RUP by the same propagations. Detaching first is
     essential: C must not propagate in its own vivification.

   DRAT obligation: the strengthened clause is added *before* the original
   is deleted, so the checker's database never loses the inference. *)

let subsume_size_limit = 16

(* Install the RUP strengthening [out] of problem clause [c]; [c] must
   already be detached. Emits the addition before the deletion, drops
   literals false at level 0 from [out] (also RUP: level-0 units falsify
   them), and when [out] is satisfied at level 0 only deletes [c] — the
   replacement would be redundant. The surviving literals are all unassigned
   at level 0, so attaching the replacement respects the watch invariant.
   Raises [Found_unsat] on a derived level-0 conflict. *)
let install_strengthened st c out =
  let sat0 = ref false and undef = ref 0 in
  Array.iter
    (fun l ->
      match value_lit st l with
      | 1 -> sat0 := true
      | 0 -> incr undef
      | _ -> ())
    out;
  if !sat0 then begin
    (* the original is satisfied by level-0 units: drop it outright *)
    record_proof_delete st c;
    Clause.set_deleted st.db c
  end
  else begin
    let final = Array.make (max !undef 1) 0 in
    let j = ref 0 in
    Array.iter
      (fun l ->
        if value_lit st l = 0 then begin
          final.(!j) <- l;
          incr j
        end)
      out;
    let final = Array.sub final 0 !undef in
    record_proof_add_arr st final;
    record_proof_delete st c;
    Clause.set_deleted st.db c;
    match !undef with
    | 0 ->
        st.ok <- false;
        raise Found_unsat
    | 1 ->
        enqueue st final.(0) Clause.cref_undef;
        if propagate st <> Clause.cref_undef then begin
          record_proof_add st [];
          st.ok <- false;
          raise Found_unsat
        end
    | _ ->
        let nc = Clause.alloc st.db final in
        attach_clause st nc;
        Vec.push st.clauses nc
  end

(* Replace attached problem clause [c] by [c] minus [remove], at level 0. *)
let strengthen_clause st c ~remove =
  let db = st.db in
  let n = Clause.size db c in
  let out = Array.make (n - 1) 0 in
  let j = ref 0 in
  for k = 0 to n - 1 do
    let q = Clause.lit db c k in
    if q <> remove then begin
      out.(!j) <- q;
      incr j
    end
  done;
  detach_clause st c;
  install_strengthened st c out

let self_subsume st fuel strengthened removed =
  let db = st.db in
  let nlits = max (2 * st.nvars) 1 in
  let occ = Array.make nlits [] in
  Vec.iter
    (fun c ->
      if (not (Clause.deleted db c)) && Clause.size db c <= subsume_size_limit
      then
        for k = 0 to Clause.size db c - 1 do
          let l = Clause.lit db c k in
          occ.(l) <- c :: occ.(l)
        done)
    st.clauses;
  let mark = Array.make nlits 0 in
  let stamp = ref 0 in
  let n0 = Vec.size st.clauses in
  let i = ref 0 in
  while !i < n0 && !fuel > 0 do
    let c = Vec.get st.clauses !i in
    incr i;
    if (not (Clause.deleted db c)) && Clause.size db c <= subsume_size_limit
    then begin
      incr stamp;
      let csize = Clause.size db c in
      for k = 0 to csize - 1 do
        mark.(Clause.lit db c k) <- !stamp
      done;
      let k = ref 0 in
      while !k < csize && !fuel > 0 do
        let l = Clause.lit db c !k in
        incr k;
        let nl = Lit.negate l in
        List.iter
          (fun d ->
            if
              !fuel > 0 && d <> c
              && (not (Clause.deleted db d))
              && (not (Clause.deleted db c))
              && Clause.size db d >= csize
              && not (locked st d)
            then begin
              let dsize = Clause.size db d in
              fuel := !fuel - dsize;
              let found = ref 0 and has_nl = ref false in
              for q = 0 to dsize - 1 do
                let lq = Clause.lit db d q in
                if lq = nl then has_nl := true
                else if lq <> l && mark.(lq) = !stamp then incr found
              done;
              if !has_nl && !found >= csize - 1 then begin
                strengthen_clause st d ~remove:nl;
                incr strengthened;
                incr removed
              end
            end)
          occ.(nl)
      done
    end
  done

let vivify s fuel strengthened removed =
  let st = s.st in
  let n0 = Vec.size st.clauses in
  let tried = ref 0 in
  while n0 > 0 && !tried < n0 && !fuel > 0 do
    incr tried;
    let idx = s.vivify_head mod n0 in
    s.vivify_head <- s.vivify_head + 1;
    let c = Vec.get st.clauses idx in
    let db = st.db in
    if (not (Clause.deleted db c)) && Clause.size db c >= 3 && not (locked st c)
    then begin
      let n = Clause.size db c in
      fuel := !fuel - n;
      let satisfied = ref false in
      for k = 0 to n - 1 do
        if value_lit st (Clause.lit db c k) = 1 then satisfied := true
      done;
      if !satisfied then begin
        (* true at level 0 in every model: deleting it preserves models *)
        detach_clause st c;
        record_proof_delete st c;
        Clause.set_deleted db c;
        incr strengthened
      end
      else begin
        let lits = Array.init n (Clause.lit db c) in
        detach_clause st c;
        let props0 = st.stats.Stats.propagations in
        let kept = ref [] in
        let kept_n = ref 0 in
        let closed = ref false in
        (* the kept prefix is RUP on its own: drop the suffix *)
        let stop = ref false in
        let k = ref 0 in
        while (not !stop) && !k < n do
          let l = lits.(!k) in
          incr k;
          (match value_lit st l with
          | 1 ->
              (* implied by the negated prefix: close the clause here *)
              kept := l :: !kept;
              incr kept_n;
              closed := true;
              stop := true
          | -1 -> () (* redundant: already false under the prefix *)
          | _ ->
              (* internal probing level: bypass [new_decision_level] so the
                 depth telemetry only counts real search levels *)
              Vec.push st.trail_lim (Vec.size st.trail);
              enqueue st (Lit.negate l) Clause.cref_undef;
              kept := l :: !kept;
              incr kept_n;
              if propagate st <> Clause.cref_undef then begin
                closed := true;
                stop := true
              end);
          if st.stats.Stats.propagations - props0 > !fuel then stop := true
        done;
        (* a budget stop mid-scan must keep the unexamined suffix *)
        if not !closed then
          while !k < n do
            kept := lits.(!k) :: !kept;
            incr kept_n;
            incr k
          done;
        cancel_until st 0;
        fuel := !fuel - (st.stats.Stats.propagations - props0);
        if !kept_n < n then begin
          let out = Array.of_list (List.rev !kept) in
          incr strengthened;
          removed := !removed + (n - !kept_n);
          install_strengthened st c out
        end
        else attach_clause st c
      end
    end
  done

let inprocess s on_event =
  let st = s.st in
  assert (decision_level st = 0);
  let fuel = ref st.cfg.inprocess_budget in
  let strengthened = ref 0 in
  let removed = ref 0 in
  let finish () =
    Vec.filter_in_place (fun c -> not (Clause.deleted st.db c)) st.clauses;
    let db = st.db in
    if Clause.wasted db * 4 > Clause.fill db then gc st;
    st.stats.Stats.inprocess_rounds <- st.stats.Stats.inprocess_rounds + 1;
    st.stats.Stats.inprocess_strengthened <-
      st.stats.Stats.inprocess_strengthened + !strengthened;
    st.stats.Stats.inprocess_literals <-
      st.stats.Stats.inprocess_literals + !removed;
    match on_event with
    | None -> ()
    | Some f -> f (Event.Inprocess (!strengthened, !removed))
  in
  (try
     self_subsume st fuel strengthened removed;
     vivify s fuel strengthened removed
   with Found_unsat ->
     finish ();
     raise Found_unsat);
  finish ()

(* One search episode under the given assumption literals. The trail is
   reset to level 0 first; learnt clauses and activities persist across
   calls. *)
let run_search s budget assumptions =
  let st = s.st in
  let assumptions = Array.of_list assumptions in
  Array.iter
    (fun l ->
      if Lit.var l < 0 || Lit.var l >= st.nvars then
        invalid_arg "Solver.solve_with: assumption variable out of range")
    assumptions;
  cancel_until st 0;
  (* wall clock, not [Sys.time]: under a multi-domain sweep, process CPU
     time accrues ~jobs× faster and budgets would expire early *)
  let start_time = Unix.gettimeofday () in
  let start_conflicts = st.stats.Stats.conflicts in
  let conflicts_at_restart = ref 0 in
  let poll_every = max 1 budget.poll_every in
  let at_poll_point () = st.stats.Stats.conflicts mod poll_every = 0 in
  (* [on_event] is matched at every emission site instead of being wrapped
     in a default closure: with the hook absent the emission is one branch
     on an immediate and no event value is ever allocated. *)
  let on_event = budget.on_event in
  let memory_exceeded () =
    match budget.max_memory_mb with
    | None -> false
    | Some mb ->
        let words = heap_words () in
        Stats.note_heap_words st.stats words;
        (match on_event with
        | None -> ()
        | Some f -> f (Event.Memout_poll words));
        words_to_megabytes words > float_of_int mb
  in
  let time_or_interrupt_exceeded () =
    (match budget.max_seconds with
    | Some sec -> Unix.gettimeofday () -. start_time > sec
    | None -> false)
    || match budget.interrupt with
       | Some f ->
           (* a hook that raises is treated as an interrupt that fired: the
              cell ends as [Q_unknown] (classifiable by the supervisor)
              instead of crashing with a foreign exception *)
           (try f () with _ -> true)
       | None -> false
  in
  let over_conflicts () =
    match budget.max_conflicts with
    | Some m -> st.stats.Stats.conflicts - start_conflicts >= m
    | None -> false
  in
  (* Conflict-free episodes (a decision dive on a huge satisfiable
     instance) never hit the conflict-granularity polls above, so the wall
     clock, interrupt and memory limits are also polled on a propagation
     counter: one check every [poll_every * 64] propagations keeps the
     [poll_every] dial meaningful on both axes. *)
  let passive =
    budget.max_seconds = None && budget.interrupt = None
    && budget.max_memory_mb = None
  in
  let prop_poll_stride = poll_every * 64 in
  let next_prop_poll = ref (st.stats.Stats.propagations + prop_poll_stride) in
  let result = ref Q_unknown in
  (try
     if not st.ok then raise Found_unsat;
     if propagate st <> Clause.cref_undef then begin
       record_proof_add st [];
       raise Found_unsat
     end;
     let finished = ref false in
     while not !finished do
       let confl = propagate st in
       if confl <> Clause.cref_undef then begin
         st.stats.Stats.conflicts <- st.stats.Stats.conflicts + 1;
         incr conflicts_at_restart;
         if decision_level st = 0 then begin
           record_proof_add st [];
           raise Found_unsat
         end;
         let learnt, blevel, lbd = analyze st confl in
         Stats.bump_lbd st.stats lbd;
         record_proof_add_arr st learnt;
         cancel_until st blevel;
         (if Array.length learnt = 1 then enqueue st learnt.(0) Clause.cref_undef
          else begin
            let c = Clause.alloc ~learnt:true st.db learnt in
            Clause.set_lbd st.db c lbd;
            Vec.push st.learnts c;
            attach_clause st c;
            cla_bump st c;
            enqueue st learnt.(0) c
          end);
         st.stats.Stats.learnt_clauses <- st.stats.Stats.learnt_clauses + 1;
         var_decay_tick st;
         cla_decay_tick st;
         if at_poll_point () then begin
           if memory_exceeded () then raise Out_of_memory_budget;
           if time_or_interrupt_exceeded () then raise Out_of_budget
         end;
         if over_conflicts () then raise Out_of_budget
       end
       else begin
         if
           (not passive)
           && st.stats.Stats.propagations >= !next_prop_poll
         then begin
           next_prop_poll := st.stats.Stats.propagations + prop_poll_stride;
           if memory_exceeded () then raise Out_of_memory_budget;
           if time_or_interrupt_exceeded () then raise Out_of_budget
         end;
         if !conflicts_at_restart >= restart_limit st s.restart_count then begin
           s.restart_count <- s.restart_count + 1;
           conflicts_at_restart := 0;
           st.stats.Stats.restarts <- st.stats.Stats.restarts + 1;
           (match on_event with
           | None -> ()
           | Some f -> f (Event.Restart s.restart_count));
           cancel_until st 0;
           if
             st.cfg.inprocess_every > 0
             && s.restart_count mod st.cfg.inprocess_every = 0
           then inprocess s on_event
         end
         else begin
           if Vec.size st.learnts >= s.max_learnts then begin
             let before = Vec.size st.learnts in
             reduce_db st;
             (match on_event with
             | None -> ()
             | Some f ->
                 f (Event.Reduce_db (before, before - Vec.size st.learnts)));
             s.max_learnts <- int_of_float (float_of_int s.max_learnts *. 1.1)
           end;
           (* establish pending assumptions before free decisions *)
           let dl = decision_level st in
           if dl < Array.length assumptions then begin
             let l = assumptions.(dl) in
             match value_lit st l with
             | -1 -> raise Assumption_failed
             | 1 ->
                 (* already implied: open an empty decision level *)
                 new_decision_level st
             | _ ->
                 st.stats.Stats.decisions <- st.stats.Stats.decisions + 1;
                 new_decision_level st;
                 enqueue st l Clause.cref_undef
           end
           else
             match pick_branch_var st with
             | None ->
                 result := Q_sat (extract_model st);
                 finished := true
             | Some v ->
                 st.stats.Stats.decisions <- st.stats.Stats.decisions + 1;
                 new_decision_level st;
                 enqueue st (Lit.make v st.phase.(v)) Clause.cref_undef
         end
       end
     done
   with
  | Found_unsat ->
      st.ok <- false;
      result := Q_unsat
  | Assumption_failed -> result := Q_unsat
  | Out_of_budget -> result := Q_unknown
  | Out_of_memory_budget -> result := Q_memout);
  cancel_until st 0;
  (* One end-of-episode heap sample so short runs (and runs without a
     memory ceiling, which never poll) still report a peak. *)
  Stats.note_heap_words st.stats (heap_words ());
  !result

let solve_with ?(budget = no_budget) ?(assumptions = []) s =
  run_search s budget assumptions

let solve ?(config = default) ?(budget = no_budget) ?proof cnf =
  let s = create ~config ?proof cnf in
  let result =
    match run_search s budget [] with
    | Q_sat model -> Sat model
    | Q_unsat -> Unsat
    | Q_unknown -> Unknown
    | Q_memout -> Memout
  in
  (result, s.st.stats)

let check_model cnf model =
  let ok = ref true in
  Cnf.iter_clauses' cnf ~f:(fun arena off len ->
      let sat = ref false in
      for k = off to off + len - 1 do
        let l = arena.(k) in
        let v = Lit.var l in
        if v < Array.length model && model.(v) = Lit.sign l then sat := true
      done;
      if not !sat then ok := false);
  !ok
