type restart_scheme = Luby_restarts of int | Geometric of int * float

type config = {
  var_decay : float;
  clause_decay : float;
  restart : restart_scheme;
  random_var_freq : float;
  phase_saving : bool;
  seed : int;
}

let minisat_like =
  {
    var_decay = 0.95;
    clause_decay = 0.999;
    restart = Luby_restarts 100;
    random_var_freq = 0.0;
    phase_saving = true;
    seed = 91648253;
  }

let siege_like =
  {
    var_decay = 0.85;
    clause_decay = 0.999;
    restart = Geometric (100, 1.3);
    random_var_freq = 0.01;
    phase_saving = true;
    seed = 2007;
  }

let default = minisat_like

type budget = {
  max_conflicts : int option;
  max_seconds : float option;
  max_memory_mb : int option;
  interrupt : (unit -> bool) option;
  poll_every : int;
  on_event : (Event.t -> unit) option;
}

let default_poll_interval = 256

let no_budget =
  {
    max_conflicts = None;
    max_seconds = None;
    max_memory_mb = None;
    interrupt = None;
    poll_every = default_poll_interval;
    on_event = None;
  }

let conflict_budget n = { no_budget with max_conflicts = Some n }
let time_budget s = { no_budget with max_seconds = Some s }
let memory_budget mb = { no_budget with max_memory_mb = Some mb }
let interruptible f budget = { budget with interrupt = Some f }
let with_poll_interval n budget = { budget with poll_every = max 1 n }
let with_memory_limit mb budget = { budget with max_memory_mb = Some mb }
let with_event_hook f budget = { budget with on_event = Some f }

(* [Gc.quick_stat] reads the major-heap size without walking the heap, so it
   is cheap enough for the conflict-poll loop. In OCaml 5 the major heap is
   shared by all domains: the bound is on the whole process image, which is
   exactly what an unattended sweep needs to survive an exploding clause
   database without the OOM killer taking down its sibling domains. *)
let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let words_to_megabytes words =
  float_of_int words *. float_of_int (Sys.word_size / 8) /. (1024. *. 1024.)


type result = Sat of bool array | Unsat | Unknown | Memout

(* Deterministic xorshift64 RNG so runs are reproducible across machines. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int (if seed = 0 then 88172645463325252 else seed) }

  let next t =
    let x = t.state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    t.state <- x;
    x

  let float t =
    let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
    float_of_int bits /. float_of_int (1 lsl 53)

  let int t bound = int_of_float (float t *. float_of_int bound)
end

type state = {
  cfg : config;
  nvars : int;
  (* clause database *)
  clauses : Clause.t Vec.t;
  learnts : Clause.t Vec.t;
  watches : Clause.t Vec.t array; (* indexed by literal *)
  (* assignment *)
  assigns : int array; (* -1 false, 0 undef, 1 true; indexed by var *)
  level : int array;
  reason : Clause.t option array;
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* heuristics *)
  activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  order : Heap.t;
  phase : bool array;
  seen : bool array;
  rng : Rng.t;
  stats : Stats.t;
  proof : Proof.t option;
  mutable ok : bool; (* false once level-0 conflict is established *)
}

let value_var st v = st.assigns.(v)

let value_lit st l =
  let a = st.assigns.(Lit.var l) in
  if Lit.sign l then a else -a

let decision_level st = Vec.size st.trail_lim

let create cfg nvars proof =
  let dummy_clause = Clause.make [||] in
  let activity = Array.make (max nvars 1) 0. in
  {
    cfg;
    nvars;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    watches = Array.init (max (2 * nvars) 1) (fun _ -> Vec.create ~dummy:dummy_clause ());
    assigns = Array.make (max nvars 1) 0;
    level = Array.make (max nvars 1) 0;
    reason = Array.make (max nvars 1) None;
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    activity;
    var_inc = 1.0;
    cla_inc = 1.0;
    order = Heap.create ~scores:activity;
    phase = Array.make (max nvars 1) false;
    seen = Array.make (max nvars 1) false;
    rng = Rng.create cfg.seed;
    stats = Stats.create ();
    proof;
    ok = true;
  }

let var_rescale st =
  for v = 0 to st.nvars - 1 do
    st.activity.(v) <- st.activity.(v) *. 1e-100
  done;
  st.var_inc <- st.var_inc *. 1e-100

let var_bump st v =
  st.activity.(v) <- st.activity.(v) +. st.var_inc;
  if st.activity.(v) > 1e100 then var_rescale st;
  Heap.rescore st.order v

let var_decay_tick st = st.var_inc <- st.var_inc /. st.cfg.var_decay

let cla_bump st (c : Clause.t) =
  c.Clause.activity <- c.Clause.activity +. st.cla_inc;
  if c.Clause.activity > 1e20 then begin
    Vec.iter (fun (d : Clause.t) -> d.Clause.activity <- d.Clause.activity *. 1e-20) st.learnts;
    st.cla_inc <- st.cla_inc *. 1e-20
  end

let cla_decay_tick st = st.cla_inc <- st.cla_inc /. st.cfg.clause_decay

let enqueue st l reason =
  let v = Lit.var l in
  assert (st.assigns.(v) = 0);
  st.assigns.(v) <- (if Lit.sign l then 1 else -1);
  st.level.(v) <- decision_level st;
  st.reason.(v) <- reason;
  Vec.push st.trail l;
  st.stats.Stats.propagations <- st.stats.Stats.propagations + 1

let attach_clause st (c : Clause.t) =
  assert (Clause.size c >= 2);
  Vec.push st.watches.(Lit.negate (Clause.get c 0)) c;
  Vec.push st.watches.(Lit.negate (Clause.get c 1)) c

(* Propagate all enqueued facts; returns the conflicting clause, if any. *)
let propagate st =
  let conflict = ref None in
  while !conflict = None && st.qhead < Vec.size st.trail do
    let p = Vec.get st.trail st.qhead in
    st.qhead <- st.qhead + 1;
    let ws = st.watches.(p) in
    let n = Vec.size ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if c.Clause.deleted then () (* lazily dropped from the watch list *)
      else begin
        let false_lit = Lit.negate p in
        if Clause.get c 0 = false_lit then Clause.swap c 0 1;
        let first = Clause.get c 0 in
        if value_lit st first = 1 then begin
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* find a replacement watch among c[2..] *)
          let rec find k =
            if k >= Clause.size c then -1
            else if value_lit st (Clause.get c k) <> -1 then k
            else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            Clause.swap c 1 k;
            Vec.push st.watches.(Lit.negate (Clause.get c 1)) c
          end
          else begin
            (* clause is unit or conflicting *)
            Vec.set ws !j c;
            incr j;
            if value_lit st first = -1 then begin
              conflict := Some c;
              st.qhead <- Vec.size st.trail;
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr i;
                incr j
              done
            end
            else enqueue st first (Some c)
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

let cancel_until st lvl =
  if decision_level st > lvl then begin
    let bound = Vec.get st.trail_lim lvl in
    let rec pop () =
      if Vec.size st.trail > bound then begin
        let l = Vec.pop st.trail in
        let v = Lit.var l in
        if st.cfg.phase_saving then st.phase.(v) <- Lit.sign l;
        st.assigns.(v) <- 0;
        st.reason.(v) <- None;
        if not (Heap.in_heap st.order v) then Heap.insert st.order v;
        pop ()
      end
    in
    pop ();
    st.qhead <- Vec.size st.trail;
    Vec.shrink st.trail_lim lvl
  end

(* First-UIP conflict analysis with basic (non-recursive) minimisation.
   Returns the learnt clause (asserting literal first, a literal of the
   second-highest level at index 1), the backtrack level and the LBD. *)
let analyze st confl =
  let learnt = ref [] in
  let to_clear = ref [] in
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size st.trail - 1) in
  let confl = ref (Some confl) in
  let continue = ref true in
  while !continue do
    let c =
      match !confl with Some c -> c | None -> assert false
    in
    if c.Clause.learnt then cla_bump st c;
    let start = if !p = -1 then 0 else 1 in
    for jj = start to Clause.size c - 1 do
      let q = Clause.get c jj in
      let v = Lit.var q in
      if (not st.seen.(v)) && st.level.(v) > 0 then begin
        var_bump st v;
        st.seen.(v) <- true;
        to_clear := v :: !to_clear;
        if st.level.(v) >= decision_level st then incr path_c
        else learnt := q :: !learnt
      end
    done;
    (* select the next trail literal to resolve on *)
    while not st.seen.(Lit.var (Vec.get st.trail !index)) do
      decr index
    done;
    p := Vec.get st.trail !index;
    decr index;
    confl := st.reason.(Lit.var !p);
    st.seen.(Lit.var !p) <- false;
    decr path_c;
    if !path_c = 0 then continue := false
  done;
  let uip = Lit.negate !p in
  (* basic minimisation: drop literals implied by the rest of the clause *)
  let keep q =
    let v = Lit.var q in
    match st.reason.(v) with
    | None -> true
    | Some r ->
        let rec any k =
          k < Clause.size r
          &&
          let w = Lit.var (Clause.get r k) in
          ((not st.seen.(w)) && st.level.(w) > 0) || any (k + 1)
        in
        any 1
  in
  let minimised = List.filter keep !learnt in
  List.iter (fun v -> st.seen.(v) <- false) !to_clear;
  let lits = uip :: minimised in
  st.stats.Stats.learnt_literals <-
    st.stats.Stats.learnt_literals + List.length lits;
  (* compute backtrack level and move a max-level literal to index 1 *)
  match lits with
  | [ _ ] -> (Array.of_list lits, 0, 1)
  | first :: rest ->
      let arr = Array.of_list (first :: rest) in
      let max_i = ref 1 in
      for k = 2 to Array.length arr - 1 do
        if st.level.(Lit.var arr.(k)) > st.level.(Lit.var arr.(!max_i)) then
          max_i := k
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!max_i);
      arr.(!max_i) <- tmp;
      let blevel = st.level.(Lit.var arr.(1)) in
      (* LBD: distinct decision levels in the clause *)
      let module IS = Set.Make (Int) in
      let lbd =
        Array.fold_left
          (fun acc l -> IS.add st.level.(Lit.var l) acc)
          IS.empty arr
        |> IS.cardinal
      in
      (arr, blevel, lbd)
  | [] -> assert false

let locked st (c : Clause.t) =
  Clause.size c > 0
  &&
  let v = Lit.var (Clause.get c 0) in
  match st.reason.(v) with Some r -> r == c | None -> false

let record_proof_add st lits =
  match st.proof with Some p -> Proof.add p lits | None -> ()

let record_proof_delete st (c : Clause.t) =
  match st.proof with Some p -> Proof.delete p (Clause.to_list c) | None -> ()

let reduce_db st =
  (* Sort learnts: prefer deleting low-activity, high-LBD clauses. *)
  let arr = Array.init (Vec.size st.learnts) (Vec.get st.learnts) in
  Array.sort
    (fun (a : Clause.t) (b : Clause.t) ->
      compare (a.Clause.activity, -a.Clause.lbd) (b.Clause.activity, -b.Clause.lbd))
    arr;
  let n = Array.length arr in
  let limit = n / 2 in
  let deleted = ref 0 in
  Array.iteri
    (fun idx (c : Clause.t) ->
      if idx < limit && Clause.size c > 2 && (not (locked st c)) && c.Clause.lbd > 2
      then begin
        c.Clause.deleted <- true;
        record_proof_delete st c;
        incr deleted
      end)
    arr;
  Vec.filter_in_place (fun (c : Clause.t) -> not c.Clause.deleted) st.learnts;
  st.stats.Stats.deleted_clauses <- st.stats.Stats.deleted_clauses + !deleted

let pick_branch_var st =
  let random_pick () =
    if st.cfg.random_var_freq > 0.
       && Rng.float st.rng < st.cfg.random_var_freq
       && st.nvars > 0
    then
      let v = Rng.int st.rng st.nvars in
      if value_var st v = 0 then Some v else None
    else None
  in
  match random_pick () with
  | Some v -> Some v
  | None ->
      let rec next () =
        if Heap.is_empty st.order then None
        else
          let v = Heap.remove_max st.order in
          if value_var st v = 0 then Some v else next ()
      in
      next ()

(* Geometric limits overflow float range quickly (inc^k); [int_of_float]
   of an out-of-range float is unspecified, so clamp to [max_int]. *)
let restart_limit_of_config cfg k =
  match cfg.restart with
  | Luby_restarts base -> base * Luby.get k
  | Geometric (first, inc) ->
      let f = float_of_int first *. (inc ** float_of_int k) in
      if f >= float_of_int max_int then max_int else int_of_float f

let restart_limit st k = restart_limit_of_config st.cfg k

let extract_model st =
  Array.init st.nvars (fun v -> st.assigns.(v) > 0)

exception Found_unsat
exception Assumption_failed
exception Out_of_budget
exception Out_of_memory_budget

(* Load the problem clauses into a fresh state; level-0 units go straight
   onto the trail, and [st.ok] turns false on an immediate conflict. Clause
   views come straight from the arena: satisfied clauses are skipped and
   false literals dropped in a counting pass, so only the surviving watched
   clauses allocate (exactly-sized, owned by the solver). *)
let load_clauses st cnf =
  Cnf.iter_clauses' cnf ~f:(fun arena off len ->
      if st.ok then begin
        let satisfied = ref false in
        let keep = ref 0 in
        for k = off to off + len - 1 do
          match value_lit st arena.(k) with
          | 1 -> satisfied := true
          | 0 -> incr keep
          | _ -> ()
        done;
        if not !satisfied then
          if !keep = 0 then begin
            record_proof_add st [];
            st.ok <- false
          end
          else if !keep = 1 then begin
            let unit = ref 0 in
            for k = off to off + len - 1 do
              if value_lit st arena.(k) = 0 then unit := arena.(k)
            done;
            enqueue st !unit None;
            match propagate st with
            | Some _ ->
                record_proof_add st [];
                st.ok <- false
            | None -> ()
          end
          else begin
            let out = Array.make !keep 0 in
            let j = ref 0 in
            for k = off to off + len - 1 do
              let l = arena.(k) in
              if value_lit st l = 0 then begin
                out.(!j) <- l;
                incr j
              end
            done;
            let c = Clause.make out in
            Vec.push st.clauses c;
            attach_clause st c
          end
      end);
  for v = 0 to st.nvars - 1 do
    if value_var st v = 0 then Heap.insert st.order v
  done

type solver = {
  st : state;
  mutable max_learnts : int;
  mutable restart_count : int;
}

type query_result =
  | Q_sat of bool array
  | Q_unsat
  | Q_unknown
  | Q_memout

let create ?(config = default) ?proof cnf =
  let st = create config (Cnf.num_vars cnf) proof in
  load_clauses st cnf;
  { st; max_learnts = max 1000 (Vec.size st.clauses / 3); restart_count = 0 }

let solver_stats s = s.st.stats

(* One search episode under the given assumption literals. The trail is
   reset to level 0 first; learnt clauses and activities persist across
   calls. *)
let run_search s budget assumptions =
  let st = s.st in
  let assumptions = Array.of_list assumptions in
  Array.iter
    (fun l ->
      if Lit.var l < 0 || Lit.var l >= st.nvars then
        invalid_arg "Solver.solve_with: assumption variable out of range")
    assumptions;
  cancel_until st 0;
  (* wall clock, not [Sys.time]: under a multi-domain sweep, process CPU
     time accrues ~jobs× faster and budgets would expire early *)
  let start_time = Unix.gettimeofday () in
  let start_conflicts = st.stats.Stats.conflicts in
  let conflicts_at_restart = ref 0 in
  let poll_every = max 1 budget.poll_every in
  let at_poll_point () = st.stats.Stats.conflicts mod poll_every = 0 in
  (* [on_event] is matched at every emission site instead of being wrapped
     in a default closure: with the hook absent the emission is one branch
     on an immediate and no event value is ever allocated. *)
  let on_event = budget.on_event in
  let over_memory () =
    match budget.max_memory_mb with
    | Some mb when at_poll_point () ->
        let words = heap_words () in
        Stats.note_heap_words st.stats words;
        (match on_event with
        | None -> ()
        | Some f -> f (Event.Memout_poll words));
        words_to_megabytes words > float_of_int mb
    | Some _ | None -> false
  in
  let over_budget () =
    (match budget.max_conflicts with
    | Some m when st.stats.Stats.conflicts - start_conflicts >= m -> true
    | Some _ | None -> false)
    || (match budget.max_seconds with
       | Some sec when at_poll_point () ->
           Unix.gettimeofday () -. start_time > sec
       | Some _ | None -> false)
    || match budget.interrupt with
       | Some f when at_poll_point () ->
           (* a hook that raises is treated as an interrupt that fired: the
              cell ends as [Q_unknown] (classifiable by the supervisor)
              instead of crashing with a foreign exception *)
           (try f () with _ -> true)
       | Some _ | None -> false
  in
  let result = ref Q_unknown in
  (try
     if not st.ok then raise Found_unsat;
     (match propagate st with
     | Some _ ->
         record_proof_add st [];
         raise Found_unsat
     | None -> ());
     let finished = ref false in
     while not !finished do
       match propagate st with
       | Some confl ->
           st.stats.Stats.conflicts <- st.stats.Stats.conflicts + 1;
           incr conflicts_at_restart;
           if decision_level st = 0 then begin
             record_proof_add st [];
             raise Found_unsat
           end;
           let learnt, blevel, lbd = analyze st confl in
           Stats.bump_lbd st.stats lbd;
           record_proof_add st (Array.to_list learnt);
           cancel_until st blevel;
           (if Array.length learnt = 1 then enqueue st learnt.(0) None
            else begin
              let c = Clause.make ~learnt:true learnt in
              c.Clause.lbd <- lbd;
              Vec.push st.learnts c;
              attach_clause st c;
              cla_bump st c;
              enqueue st learnt.(0) (Some c)
            end);
           st.stats.Stats.learnt_clauses <- st.stats.Stats.learnt_clauses + 1;
           var_decay_tick st;
           cla_decay_tick st;
           if over_memory () then raise Out_of_memory_budget;
           if over_budget () then raise Out_of_budget
       | None ->
           if !conflicts_at_restart >= restart_limit st s.restart_count then begin
             s.restart_count <- s.restart_count + 1;
             conflicts_at_restart := 0;
             st.stats.Stats.restarts <- st.stats.Stats.restarts + 1;
             (match on_event with
             | None -> ()
             | Some f -> f (Event.Restart s.restart_count));
             cancel_until st 0
           end
           else begin
             if Vec.size st.learnts >= s.max_learnts then begin
               let before = Vec.size st.learnts in
               reduce_db st;
               (match on_event with
               | None -> ()
               | Some f ->
                   f (Event.Reduce_db (before, before - Vec.size st.learnts)));
               s.max_learnts <- int_of_float (float_of_int s.max_learnts *. 1.1)
             end;
             (* establish pending assumptions before free decisions *)
             let dl = decision_level st in
             if dl < Array.length assumptions then begin
               let l = assumptions.(dl) in
               match value_lit st l with
               | -1 -> raise Assumption_failed
               | 1 ->
                   (* already implied: open an empty decision level *)
                   Vec.push st.trail_lim (Vec.size st.trail)
               | _ ->
                   st.stats.Stats.decisions <- st.stats.Stats.decisions + 1;
                   Vec.push st.trail_lim (Vec.size st.trail);
                   enqueue st l None
             end
             else
               match pick_branch_var st with
               | None ->
                   result := Q_sat (extract_model st);
                   finished := true
               | Some v ->
                   st.stats.Stats.decisions <- st.stats.Stats.decisions + 1;
                   Vec.push st.trail_lim (Vec.size st.trail);
                   if decision_level st > st.stats.Stats.max_decision_level then
                     st.stats.Stats.max_decision_level <- decision_level st;
                   enqueue st (Lit.make v st.phase.(v)) None
           end
     done
   with
  | Found_unsat ->
      st.ok <- false;
      result := Q_unsat
  | Assumption_failed -> result := Q_unsat
  | Out_of_budget -> result := Q_unknown
  | Out_of_memory_budget -> result := Q_memout);
  cancel_until st 0;
  (* One end-of-episode heap sample so short runs (and runs without a
     memory ceiling, which never poll) still report a peak. *)
  Stats.note_heap_words st.stats (heap_words ());
  !result

let solve_with ?(budget = no_budget) ?(assumptions = []) s =
  run_search s budget assumptions

let solve ?(config = default) ?(budget = no_budget) ?proof cnf =
  let s = create ~config ?proof cnf in
  let result =
    match run_search s budget [] with
    | Q_sat model -> Sat model
    | Q_unsat -> Unsat
    | Q_unknown -> Unknown
    | Q_memout -> Memout
  in
  (result, s.st.stats)

let check_model cnf model =
  let ok = ref true in
  Cnf.iter_clauses' cnf ~f:(fun arena off len ->
      let sat = ref false in
      for k = off to off + len - 1 do
        let l = arena.(k) in
        let v = Lit.var l in
        if v < Array.length model && model.(v) = Lit.sign l then sat := true
      done;
      if not !sat then ok := false);
  !ok
