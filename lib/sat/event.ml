(** Solver lifecycle events, delivered through
    {!Solver.budget.on_event}.

    The solver allocates an event value only when a hook is installed
    ([on_event = Some f]); with the default [None] the emission sites
    compile to a single match on an immediate, so tracing costs nothing
    when disabled. Payloads are plain integers — rich context (timestamps,
    run identity) is the consumer's job, see [Fpgasat_obs.Trace]. *)

type t =
  | Restart of int
      (** A scheduled restart fired; payload is the cumulative restart
          count of this solver. *)
  | Reduce_db of int * int
      (** Learnt-clause database reduction: clauses before, clauses
          deleted. *)
  | Memout_poll of int
      (** The memory ceiling was polled; payload is the major-heap size in
          words at the poll. Only emitted when [max_memory_mb] is set. *)
  | Simplify_round of int
      (** The preprocessor finished the given (1-based) round. *)
  | Inprocess of int * int
      (** A bounded inprocessing pass (self-subsumption + vivification
          between restarts) finished: clauses strengthened or deleted,
          literals removed. *)

let name = function
  | Restart _ -> "restart"
  | Reduce_db _ -> "reduce_db"
  | Memout_poll _ -> "memout_poll"
  | Simplify_round _ -> "simplify_round"
  | Inprocess _ -> "inprocess"
