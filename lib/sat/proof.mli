(** DRAT proof traces.

    When enabled, the CDCL solver records every learnt clause (an addition
    step) and every clause-database deletion, ending with the empty clause on
    an UNSAT answer. The trace can be written in the standard textual DRAT
    format consumed by external checkers, and this module also provides a
    lightweight internal check that the recorded additions end with the empty
    clause. *)

type step = Add of Lit.t list | Delete of Lit.t list

type t

val create : unit -> t
val add : t -> Lit.t list -> unit

val add_array : t -> Lit.t array -> unit
(** As {!add}; lets recording sites that hold literal arrays defer the list
    conversion until a proof is actually being recorded. *)

val delete : t -> Lit.t list -> unit
val steps : t -> step list
(** In recording order. *)

val num_steps : t -> int

val ends_with_empty : t -> bool
(** [true] iff the last addition step is the empty clause — the shape a DRAT
    refutation must have. *)

val output : out_channel -> t -> unit
(** Textual DRAT: one step per line, deletions prefixed with ["d"],
    0-terminated DIMACS literals. *)

exception Parse_error of string

val parse : in_channel -> t
(** Parse textual DRAT as written by {!output}: 0-terminated DIMACS
    literals, ["d"]-prefixed deletions, ["c"] comment lines and blank lines
    ignored. Raises {!Parse_error} on malformed input. *)

val parse_file : string -> t
(** [parse_file path] — {!parse} applied to the file at [path]. *)
