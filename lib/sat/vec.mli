(** Growable arrays, used for watcher lists and clause databases.

    A thin dynamic-array layer over [Array]; elements beyond [size] are
    garbage and must not be observed. Every operation that vacates slots
    ([pop], [clear], [shrink], [swap_remove], [filter_in_place]) overwrites
    them with [dummy] so removed elements become unreachable and the GC can
    collect them. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector. [dummy] fills unused slots. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Removes and returns the last element. Raises [Invalid_argument] when
    empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
(** Resets the size to [0] without shrinking storage. *)

val shrink : 'a t -> int -> unit
(** [shrink v n] drops elements so that exactly [n] remain. *)

val swap_remove : 'a t -> int -> unit
(** [swap_remove v i] removes element [i] by moving the last element into
    its place: O(1), does not preserve order. *)

val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only elements satisfying the predicate, preserving order. *)
