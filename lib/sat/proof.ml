type step = Add of Lit.t list | Delete of Lit.t list
type t = { steps : step Vec.t }

let create () = { steps = Vec.create ~dummy:(Add []) () }
let add t lits = Vec.push t.steps (Add lits)
let add_array t lits = Vec.push t.steps (Add (Array.to_list lits))
let delete t lits = Vec.push t.steps (Delete lits)
let steps t = Vec.to_list t.steps
let num_steps t = Vec.size t.steps

let ends_with_empty t =
  let rec last_add i =
    if i < 0 then None
    else
      match Vec.get t.steps i with
      | Add lits -> Some lits
      | Delete _ -> last_add (i - 1)
  in
  match last_add (Vec.size t.steps - 1) with
  | Some [] -> true
  | Some _ | None -> false

exception Parse_error of string

let parse_line t line_no line =
  let fail fmt =
    Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line_no s))) fmt
  in
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> ()
  | "c" :: _ -> ()
  | first :: _ ->
      let is_delete = first = "d" in
      let body = if is_delete then List.tl tokens else tokens in
      let lits, terminated =
        List.fold_left
          (fun (acc, closed) tok ->
            if closed then fail "literals after terminating 0";
            match int_of_string_opt tok with
            | None -> fail "bad literal %S" tok
            | Some 0 -> (acc, true)
            | Some d -> (Lit.of_dimacs d :: acc, false))
          ([], false) body
      in
      if not terminated then fail "missing terminating 0";
      let lits = List.rev lits in
      if is_delete then delete t lits else add t lits

let parse ic =
  let t = create () in
  let rec loop n =
    match input_line ic with
    | line ->
        parse_line t n line;
        loop (n + 1)
    | exception End_of_file -> t
  in
  loop 1

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse ic)

let output oc t =
  let put_lits lits =
    List.iter (fun l -> Printf.fprintf oc "%d " (Lit.to_dimacs l)) lits;
    output_string oc "0\n"
  in
  Vec.iter
    (function
      | Add lits -> put_lits lits
      | Delete lits ->
          output_string oc "d ";
          put_lits lits)
    t.steps
