(** DIMACS CNF reader and writer.

    The standard [p cnf <vars> <clauses>] format: comment lines start with
    ["c"], clauses are 0-terminated integer lists and may span several
    lines. *)

exception Parse_error of string
(** Raised with a human-readable message (including a line number) on
    malformed input. *)

val parse_string : string -> Cnf.t
val parse_file : string -> Cnf.t

val to_buffer : Buffer.t -> ?comments:string list -> Cnf.t -> unit
(** Appends the formula (preceded by the given comment lines) to a buffer,
    iterating the clause arena directly — no per-clause copies. *)

val output : out_channel -> ?comments:string list -> Cnf.t -> unit
(** Writes the formula, preceded by the given comment lines. *)

val to_string : ?comments:string list -> Cnf.t -> string
val write_file : string -> ?comments:string list -> Cnf.t -> unit
