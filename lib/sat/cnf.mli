(** CNF formulas on a packed literal arena.

    This is the builder the encoders write into and the store every
    downstream consumer (solver, DPLL, WalkSAT, simplifier, DIMACS writer,
    DRAT checker) reads from. Clauses live in one flat [int array] of
    literals with an offsets index — not as boxed per-clause arrays — so
    whole-formula traversal, copy, and append are cache-friendly and
    allocation-free.

    Light normalisation happens on insertion: literals are sorted, duplicate
    literals are removed, and tautological clauses (containing [l] and
    [not l]) are dropped.

    {b Zero-copy invariants.} {!lits_array}, {!get_clause} views, and the
    arrays handed to {!iter_clauses'} / {!fold_clauses} callbacks alias the
    formula's internal storage. They are valid until the next clause is
    added (arena growth may replace the backing array); do not mutate them,
    and re-fetch after any addition. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the initial literal-arena size in words (default 256);
    the arena doubles as needed. *)

val fresh_var : t -> Lit.var
(** Allocates the next unused variable. *)

val fresh_vars : t -> int -> Lit.var array
(** [fresh_vars t n] allocates [n] consecutive fresh variables. *)

val num_vars : t -> int
val num_clauses : t -> int

val num_lits : t -> int
(** Total literal count over all clauses (the arena fill). *)

val ensure_vars : t -> int -> unit
(** [ensure_vars t n] makes sure variables [0 .. n-1] exist. *)

val add_clause : t -> Lit.t list -> unit
(** Adds a clause. Duplicate literals are removed; tautologies are ignored.
    Adding the empty clause is allowed and makes the formula trivially
    unsatisfiable. Raises [Invalid_argument] if a literal mentions a variable
    that was never allocated. *)

(** {2 Clause builder}

    The allocation-free emission path: push literals one by one into a
    reusable scratch buffer, then commit. [add_clause] is
    [start_clause] + [push_lit]* + [commit_clause]. *)

val start_clause : t -> unit
(** Begins a new clause, discarding any uncommitted literals. *)

val push_lit : t -> Lit.t -> unit
(** Appends a literal to the clause under construction. Raises
    [Invalid_argument] on an unallocated variable. *)

val commit_clause : t -> unit
(** Normalises the pending literals in place (sort, dedupe, tautology
    check) and appends the clause to the arena; tautologies are dropped. *)

(** {2 Zero-copy access} *)

type view = { arena : int array; off : int; len : int }
(** A window into the arena: clause literals are
    [arena.(off) .. arena.(off + len - 1)]. Valid until the next clause
    addition. *)

val get_clause : t -> int -> view
(** [get_clause t i] is clause [i] (insertion order), without copying. *)

val view_len : view -> int
val view_get : view -> int -> Lit.t
val view_to_array : view -> Lit.t array
(** A fresh copy of the viewed literals. *)

val view_to_list : view -> Lit.t list

val clause_off : t -> int -> int
(** Start offset of clause [i] in {!lits_array}. *)

val clause_len : t -> int -> int
val clause_lit : t -> int -> int -> Lit.t
(** [clause_lit t i k] is literal [k] of clause [i]. *)

val lits_array : t -> int array
(** The backing literal arena. Only indices covered by some clause are
    meaningful; valid until the next clause addition. *)

val iter_clauses' : t -> f:(int array -> int -> int -> unit) -> unit
(** [iter_clauses' t ~f] calls [f arena off len] for each clause in
    insertion order. No per-clause allocation. *)

val fold_clauses : t -> init:'a -> f:('a -> int array -> int -> int -> 'a) -> 'a
(** [fold_clauses t ~init ~f] folds [f acc arena off len] over clauses in
    insertion order. *)

(** {2 Bulk operations} *)

val append : t -> t -> unit
(** [append dst src] appends every clause of [src] to [dst] (one arena blit
    plus an offset rebase; no per-clause work) and raises [dst]'s variable
    count to cover [src]'s. [src] is unchanged. *)

val copy : t -> t
(** An independent copy, arena sized exactly to the source's literals. *)

val structural_hash : t -> int64
(** A 64-bit FNV-1a hash of the formula's logical content: the variable
    count and every clause's normalised literals, in insertion order.
    Deterministic across processes and runs (no randomised seeding), and a
    function of content only — spare arena capacity, growth history, and
    [copy]/[append] provenance do not affect it. Two formulas built by the
    same deterministic encoder from the same input always collide; distinct
    formulas collide with probability ~2^-64. The solve server keys its
    answer cache on this hash (× strategy × budget). *)

val live_words : t -> int
(** Words currently held by the arena and its indexes (capacity, not fill) —
    the formula's resident memory footprint, for benchmarks. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line "v=… c=… lits=…" summary. *)
