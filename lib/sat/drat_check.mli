(** Forward DRAT proof checker with watched-literal propagation.

    The checker validates refutation traces produced by {!Solver} (or parsed
    from textual DRAT via {!Proof.parse_file}): each [Add] step must be RUP
    (reverse unit propagation) or, failing that, RAT on its first literal;
    [Delete] steps remove clauses from the active set. Clauses live in a
    flat literal arena; unit propagation is incremental across proof steps
    via a persistent trail, so a bench-sized trace checks in near-linear
    time rather than the quadratic re-scan of the reference checker.

    Deviations worth knowing, both the drat-trim convention: deleting a
    clause that is not present is a tolerated no-op (counted in {!stats}),
    and deleting a unit clause does not retract its propagation. *)

type stats = {
  mutable additions : int;  (** [Add] steps examined *)
  mutable rup_steps : int;  (** additions validated by RUP alone *)
  mutable rat_steps : int;  (** additions that needed the RAT fallback *)
  mutable deletions : int;  (** clauses actually removed *)
  mutable ignored_deletions : int;
      (** deletions of absent clauses, tolerated as no-ops *)
  mutable propagations : int;  (** trail literals processed *)
}

val pp_stats : Format.formatter -> stats -> unit

type error =
  | Bad_step of { step_index : int; reason : string }
      (** step [step_index] (0-based) is not a valid DRAT inference *)
  | No_empty_clause of { num_steps : int }
      (** the [num_steps]-step trace never derives a top-level conflict *)

val pp_error : Format.formatter -> error -> unit

val check : Cnf.t -> Proof.t -> (stats, error) result
(** [check cnf proof] replays [proof] against [cnf] and succeeds iff the
    trace derives the empty clause (equivalently, a top-level conflict),
    certifying that [cnf] is unsatisfiable. *)

val check_reference : Cnf.t -> Proof.t -> (unit, error) result
(** The original list-scanning RUP checker, kept as a differential-testing
    oracle and benchmark baseline. Quadratic in the trace size; rejects
    additions that need RAT and treats a deletion of an absent clause as a
    no-op without recording it. *)

val is_rup : Cnf.t -> Lit.t list -> bool
(** [is_rup cnf clause] holds iff assuming the negation of [clause] and
    unit-propagating over [cnf] yields a conflict. *)

val is_rat : Cnf.t -> Lit.t list -> bool
(** [is_rat cnf clause] holds iff [clause] is RUP, or RAT on its first
    literal, with respect to [cnf]. *)
