type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; size = 0; dummy }

let size v = v.size
let is_empty v = v.size = 0

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set";
  v.data.(i) <- x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  if v.size = Array.length v.data then grow v;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop";
  v.size <- v.size - 1;
  let x = v.data.(v.size) in
  v.data.(v.size) <- v.dummy;
  x

let last v =
  if v.size = 0 then invalid_arg "Vec.last";
  v.data.(v.size - 1)

(* Vacated slots are overwritten with [dummy] everywhere below: boxed
   elements kept alive past [size] are invisible to clients but visible to
   the GC, so a watch list shrunk during propagation would otherwise pin
   every clause it ever held. *)

let clear v =
  Array.fill v.data 0 v.size v.dummy;
  v.size <- 0

let shrink v n =
  if n < 0 || n > v.size then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.size - n) v.dummy;
  v.size <- n

let swap_remove v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.swap_remove";
  v.data.(i) <- v.data.(v.size - 1);
  v.data.(v.size - 1) <- v.dummy;
  v.size <- v.size - 1

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let exists p v =
  let rec go i = i < v.size && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.size - 1) []

let of_list ~dummy l =
  let v = create ~dummy () in
  List.iter (push v) l;
  v

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.size - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  Array.fill v.data !j (v.size - !j) v.dummy;
  v.size <- !j
