type result = Sat of bool array | Unsat | Unknown

exception Budget

(* Assignment: -1 false, 0 undef, 1 true. Clauses are scanned directly in
   the CNF's literal arena. The solver re-scans clauses for units —
   quadratic, but this module exists for correctness (cross-checking the
   CDCL solver), not speed. *)
let solve ?max_decisions cnf =
  let nvars = Cnf.num_vars cnf in
  let assigns = Array.make (max nvars 1) 0 in
  let decisions = ref 0 in
  let value_lit l =
    let a = assigns.(Lit.var l) in
    if Lit.sign l then a else -a
  in
  (* Returns [`Conflict] or [`Fixpoint units] where units are the literals
     assigned during this propagation (to undo on backtrack). *)
  let propagate () =
    let assigned = ref [] in
    let conflict = ref false in
    let progress = ref true in
    while !progress && not !conflict do
      progress := false;
      Cnf.iter_clauses' cnf ~f:(fun arena off len ->
          if not !conflict then begin
            let unassigned = ref 0 in
            let unit = ref 0 in
            let satisfied = ref false in
            for k = off to off + len - 1 do
              let l = arena.(k) in
              match value_lit l with
              | 1 -> satisfied := true
              | 0 ->
                  incr unassigned;
                  unit := l
              | _ -> ()
            done;
            if not !satisfied then
              if !unassigned = 0 then conflict := true
              else if !unassigned = 1 then begin
                let l = !unit in
                assigns.(Lit.var l) <- (if Lit.sign l then 1 else -1);
                assigned := l :: !assigned;
                progress := true
              end
          end)
    done;
    if !conflict then begin
      List.iter (fun l -> assigns.(Lit.var l) <- 0) !assigned;
      `Conflict
    end
    else `Fixpoint !assigned
  in
  let undo lits = List.iter (fun l -> assigns.(Lit.var l) <- 0) lits in
  let next_var () =
    let rec go v = if v >= nvars then None else if assigns.(v) = 0 then Some v else go (v + 1) in
    go 0
  in
  let rec search () =
    match propagate () with
    | `Conflict -> false
    | `Fixpoint units -> (
        match next_var () with
        | None -> true
        | Some v ->
            (match max_decisions with
            | Some m when !decisions >= m -> raise Budget
            | Some _ | None -> ());
            incr decisions;
            let try_phase sign =
              assigns.(v) <- (if sign then 1 else -1);
              if search () then true
              else begin
                assigns.(v) <- 0;
                false
              end
            in
            if try_phase true then true
            else if try_phase false then true
            else begin
              undo units;
              false
            end)
  in
  match search () with
  | true -> Sat (Array.init nvars (fun v -> assigns.(v) > 0))
  | false -> Unsat
  | exception Budget -> Unknown
