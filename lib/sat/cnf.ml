(* Clauses live in one flat literal arena: [lits.(offs.(i)) ..
   lits.(offs.(i) + lens.(i) - 1)] are clause [i]'s literals. The arena is
   append-only and packed (offsets are ascending, [nlits] is the fill
   pointer), which makes whole-formula copies and appends plain blits and
   lets every consumer iterate without re-materialising clause arrays. *)

type t = {
  mutable nvars : int;
  mutable lits : int array; (* packed literal arena, filled to [nlits] *)
  mutable nlits : int;
  mutable offs : int array; (* clause -> start offset, filled to [nclauses] *)
  mutable lens : int array; (* clause -> literal count *)
  mutable nclauses : int;
  mutable scratch : int array; (* clause under construction *)
  mutable slen : int;
}

type view = { arena : int array; off : int; len : int }

let create ?(capacity = 256) () =
  {
    nvars = 0;
    lits = Array.make (max capacity 16) 0;
    nlits = 0;
    offs = Array.make 64 0;
    lens = Array.make 64 0;
    nclauses = 0;
    scratch = Array.make 16 0;
    slen = 0;
  }

let fresh_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  v

let fresh_vars t n = Array.init n (fun _ -> fresh_var t)
let num_vars t = t.nvars
let num_clauses t = t.nclauses
let num_lits t = t.nlits
let ensure_vars t n = if n > t.nvars then t.nvars <- n

let reserve_lits t extra =
  let cap = Array.length t.lits in
  if t.nlits + extra > cap then begin
    let cap' = ref (2 * cap) in
    while t.nlits + extra > !cap' do
      cap' := 2 * !cap'
    done;
    let a = Array.make !cap' 0 in
    Array.blit t.lits 0 a 0 t.nlits;
    t.lits <- a
  end

let reserve_clauses t extra =
  let cap = Array.length t.offs in
  if t.nclauses + extra > cap then begin
    let cap' = ref (2 * cap) in
    while t.nclauses + extra > !cap' do
      cap' := 2 * !cap'
    done;
    let o = Array.make !cap' 0 and l = Array.make !cap' 0 in
    Array.blit t.offs 0 o 0 t.nclauses;
    Array.blit t.lens 0 l 0 t.nclauses;
    t.offs <- o;
    t.lens <- l
  end

(* --- clause builder ---------------------------------------------------- *)

let start_clause t = t.slen <- 0

let push_lit t l =
  if Lit.var l < 0 || Lit.var l >= t.nvars then
    invalid_arg "Cnf.add_clause: unallocated variable";
  if t.slen = Array.length t.scratch then begin
    let a = Array.make (2 * t.slen) 0 in
    Array.blit t.scratch 0 a 0 t.slen;
    t.scratch <- a
  end;
  t.scratch.(t.slen) <- l;
  t.slen <- t.slen + 1

(* Sort the scratch segment in place (insertion sort: clauses are short),
   dedupe, and detect tautologies; complementary literals are adjacent after
   sorting because they share the variable part of the encoding. No
   intermediate list or array is allocated. *)
let commit_clause t =
  let s = t.scratch in
  let n = t.slen in
  for i = 1 to n - 1 do
    let x = s.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && s.(!j) > x do
      s.(!j + 1) <- s.(!j);
      decr j
    done;
    s.(!j + 1) <- x
  done;
  let m = ref 0 in
  let tauto = ref false in
  for i = 0 to n - 1 do
    if !m = 0 || s.(i) <> s.(!m - 1) then begin
      if !m > 0 && s.(i) lxor s.(!m - 1) = 1 then tauto := true;
      s.(!m) <- s.(i);
      incr m
    end
  done;
  t.slen <- 0;
  if not !tauto then begin
    let len = !m in
    reserve_lits t len;
    Array.blit s 0 t.lits t.nlits len;
    reserve_clauses t 1;
    t.offs.(t.nclauses) <- t.nlits;
    t.lens.(t.nclauses) <- len;
    t.nclauses <- t.nclauses + 1;
    t.nlits <- t.nlits + len
  end

let add_clause t lits =
  start_clause t;
  List.iter (fun l -> push_lit t l) lits;
  commit_clause t

(* --- zero-copy access -------------------------------------------------- *)

let lits_array t = t.lits

let clause_off t i =
  if i < 0 || i >= t.nclauses then invalid_arg "Cnf.clause_off";
  t.offs.(i)

let clause_len t i =
  if i < 0 || i >= t.nclauses then invalid_arg "Cnf.clause_len";
  t.lens.(i)

let clause_lit t i k =
  if i < 0 || i >= t.nclauses then invalid_arg "Cnf.clause_lit";
  if k < 0 || k >= t.lens.(i) then invalid_arg "Cnf.clause_lit";
  t.lits.(t.offs.(i) + k)

let get_clause t i =
  if i < 0 || i >= t.nclauses then invalid_arg "Cnf.get_clause";
  { arena = t.lits; off = t.offs.(i); len = t.lens.(i) }

let view_len v = v.len

let view_get v k =
  if k < 0 || k >= v.len then invalid_arg "Cnf.view_get";
  v.arena.(v.off + k)

let view_to_array v = Array.sub v.arena v.off v.len

let view_to_list v =
  let rec go k acc = if k < v.off then acc else go (k - 1) (v.arena.(k) :: acc) in
  go (v.off + v.len - 1) []

let iter_clauses' t ~f =
  for i = 0 to t.nclauses - 1 do
    f t.lits t.offs.(i) t.lens.(i)
  done

let fold_clauses t ~init ~f =
  let acc = ref init in
  for i = 0 to t.nclauses - 1 do
    acc := f !acc t.lits t.offs.(i) t.lens.(i)
  done;
  !acc

(* --- bulk operations --------------------------------------------------- *)

let append dst src =
  if src.nvars > dst.nvars then dst.nvars <- src.nvars;
  reserve_lits dst src.nlits;
  Array.blit src.lits 0 dst.lits dst.nlits src.nlits;
  reserve_clauses dst src.nclauses;
  let base = dst.nlits in
  for i = 0 to src.nclauses - 1 do
    dst.offs.(dst.nclauses + i) <- src.offs.(i) + base;
    dst.lens.(dst.nclauses + i) <- src.lens.(i)
  done;
  dst.nclauses <- dst.nclauses + src.nclauses;
  dst.nlits <- dst.nlits + src.nlits

let copy t =
  let c = create ~capacity:(max t.nlits 16) () in
  append c t;
  c

(* FNV-1a over the logical content (variable count, then each clause's
   normalised literals with a terminator). Only the packed fill is hashed —
   never spare arena capacity — so structurally identical formulas hash
   identically regardless of growth history, and [copy]/[append] preserve
   the hash of the copied content. Deterministic across processes (no
   [Hashtbl.hash] seeding), which is what lets a solve server key its
   answer cache on it. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let structural_hash t =
  let h = ref fnv_offset in
  let mix x =
    (* fold the int in as 8 bytes, FNV-1a style *)
    let v = ref (Int64.of_int x) in
    for _ = 0 to 7 do
      let byte = Int64.to_int (Int64.logand !v 0xffL) in
      h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime;
      v := Int64.shift_right_logical !v 8
    done
  in
  mix t.nvars;
  mix t.nclauses;
  for i = 0 to t.nclauses - 1 do
    let off = t.offs.(i) and len = t.lens.(i) in
    for k = off to off + len - 1 do
      mix t.lits.(k)
    done;
    (* terminator: distinguishes [1][2,3] from [1,2][3] *)
    mix min_int
  done;
  !h

let live_words t =
  Array.length t.lits + (2 * Array.length t.offs) + Array.length t.scratch

let pp_stats fmt t =
  Format.fprintf fmt "v=%d c=%d lits=%d" t.nvars t.nclauses t.nlits
