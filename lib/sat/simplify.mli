(** CNF preprocessing.

    Standard satisfiability-preserving simplifications applied before
    search: unit propagation to fixpoint, pure-literal elimination,
    duplicate-clause removal, subsumption, and self-subsum ption
    (clause strengthening). Variable numbering is preserved, so a model of
    the simplified formula extends to one of the original via
    {!extend_model}. Used by the benchmark harness to quantify how much of
    each encoding's advantage survives preprocessing.

    This module rewrites a {!Cnf.t} {e before} search and needs no proof
    logging; {!Solver} additionally runs its own bounded {e inprocessing}
    (self-subsumption + vivification over the solver's clause arena,
    DRAT-logged) between restarts — see the [inprocess_every] and
    [inprocess_budget] fields of {!Solver.config}. *)

type stats = {
  units : int;  (** Literals fixed by unit propagation. *)
  pures : int;  (** Pure literals eliminated. *)
  duplicates : int;  (** Duplicate clauses dropped. *)
  subsumed : int;  (** Clauses removed by subsumption. *)
  strengthened : int;  (** Literals removed by self-subsumption. *)
  rounds : int;
}

type result = {
  cnf : Cnf.t;  (** Simplified formula over the original variables. *)
  forced : (Lit.var * bool) list;
      (** Assignments fixed by units/pures, to be re-applied to models. *)
  unsat : bool;  (** Preprocessing alone refuted the formula. *)
  stats : stats;
}

val simplify : ?on_event:(Event.t -> unit) -> ?max_rounds:int -> Cnf.t -> result
(** [simplify cnf] runs rounds of all techniques until fixpoint or
    [max_rounds] (default 10). The input is not modified. [on_event]
    receives one {!Event.Simplify_round} per completed round. *)

val extend_model : result -> bool array -> bool array
(** [extend_model r m] lifts a model of [r.cnf] to the original formula:
    forced assignments override, everything else is taken from [m]. The
    result has the original variable count. *)

val solve :
  ?config:Solver.config ->
  ?budget:Solver.budget ->
  Cnf.t ->
  Solver.result * stats * Stats.t
(** Preprocess, then solve, then extend the model; a drop-in strengthening
    of {!Solver.solve} (no proof support, since preprocessing steps are not
    recorded in the trace). The budget's [on_event] hook, if any, also
    observes the preprocessing rounds. *)

val pp_stats : Format.formatter -> stats -> unit
