type params = { max_tries : int; max_flips : int; noise : float; seed : int }

let default_params =
  { max_tries = 20; max_flips = 200_000; noise = 0.5; seed = 1992 }

type result = Sat of bool array | Unknown

(* xorshift64, as in Solver, so results are machine-independent *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed =
    { state = Int64.of_int (if seed = 0 then 424242 else seed) }

  let next t =
    let x = t.state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    t.state <- x;
    x

  let float t =
    let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
    float_of_int bits /. float_of_int (1 lsl 53)

  let int t bound =
    let v = int_of_float (float t *. float_of_int bound) in
    if v >= bound then bound - 1 else v
end

type state = {
  nvars : int;
  cnf : Cnf.t; (* clauses are read straight from the literal arena *)
  nclauses : int;
  occ : int list array; (* literal -> clause indices containing it *)
  model : bool array;
  sat_count : int array; (* satisfied literals per clause *)
  unsat : int Vec.t; (* indices of unsatisfied clauses *)
  unsat_pos : int array; (* clause -> position in [unsat], or -1 *)
  rng : Rng.t;
}

let lit_true st l = st.model.(Lit.var l) = Lit.sign l

let unsat_add st c =
  if st.unsat_pos.(c) < 0 then begin
    st.unsat_pos.(c) <- Vec.size st.unsat;
    Vec.push st.unsat c
  end

let unsat_remove st c =
  let pos = st.unsat_pos.(c) in
  if pos >= 0 then begin
    let last = Vec.last st.unsat in
    Vec.set st.unsat pos last;
    st.unsat_pos.(last) <- pos;
    ignore (Vec.pop st.unsat);
    st.unsat_pos.(c) <- -1
  end

let recompute st =
  Vec.clear st.unsat;
  Array.fill st.unsat_pos 0 (Array.length st.unsat_pos) (-1);
  let arena = Cnf.lits_array st.cnf in
  for c = 0 to st.nclauses - 1 do
    let off = Cnf.clause_off st.cnf c in
    let n = ref 0 in
    for k = off to off + Cnf.clause_len st.cnf c - 1 do
      if lit_true st arena.(k) then incr n
    done;
    st.sat_count.(c) <- !n;
    if !n = 0 then unsat_add st c
  done

let flip st v =
  let was = st.model.(v) in
  let true_lit = Lit.make v was in
  let false_lit = Lit.negate true_lit in
  st.model.(v) <- not was;
  (* clauses that contained the formerly true literal lose one *)
  List.iter
    (fun c ->
      st.sat_count.(c) <- st.sat_count.(c) - 1;
      if st.sat_count.(c) = 0 then unsat_add st c)
    st.occ.(true_lit);
  (* clauses that contain the newly true literal gain one *)
  List.iter
    (fun c ->
      st.sat_count.(c) <- st.sat_count.(c) + 1;
      if st.sat_count.(c) = 1 then unsat_remove st c)
    st.occ.(false_lit)

let break_count st v =
  (* clauses that would become unsatisfied: those where the currently true
     literal of v is the only satisfied literal *)
  let true_lit = Lit.make v st.model.(v) in
  List.fold_left
    (fun acc c -> if st.sat_count.(c) = 1 then acc + 1 else acc)
    0 st.occ.(true_lit)

let has_empty_clause cnf =
  let empty = ref false in
  for c = 0 to Cnf.num_clauses cnf - 1 do
    if Cnf.clause_len cnf c = 0 then empty := true
  done;
  !empty

let solve ?(params = default_params) cnf =
  let nvars = Cnf.num_vars cnf in
  if has_empty_clause cnf then (Unknown, 0)
  else begin
    let nclauses = Cnf.num_clauses cnf in
    let occ = Array.make (max (2 * nvars) 1) [] in
    let arena = Cnf.lits_array cnf in
    for c = 0 to nclauses - 1 do
      let off = Cnf.clause_off cnf c in
      for k = off to off + Cnf.clause_len cnf c - 1 do
        let l = arena.(k) in
        occ.(l) <- c :: occ.(l)
      done
    done;
    let st =
      {
        nvars;
        cnf;
        nclauses;
        occ;
        model = Array.make (max nvars 1) false;
        sat_count = Array.make (max nclauses 1) 0;
        unsat = Vec.create ~dummy:(-1) ();
        unsat_pos = Array.make (max nclauses 1) (-1);
        rng = Rng.create params.seed;
      }
    in
    let flips = ref 0 in
    let rec tries t =
      if t >= params.max_tries then Unknown
      else begin
        for v = 0 to nvars - 1 do
          st.model.(v) <- Rng.int st.rng 2 = 1
        done;
        recompute st;
        let rec walk f =
          if Vec.is_empty st.unsat then Sat (Array.copy st.model)
          else if f >= params.max_flips then Unknown
          else begin
            incr flips;
            let c = Vec.get st.unsat (Rng.int st.rng (Vec.size st.unsat)) in
            let arena = Cnf.lits_array st.cnf in
            let off = Cnf.clause_off st.cnf c in
            let len = Cnf.clause_len st.cnf c in
            let v =
              if Rng.float st.rng < params.noise then
                Lit.var arena.(off + Rng.int st.rng len)
              else begin
                (* greedy: the variable with the fewest broken clauses *)
                let best = ref (Lit.var arena.(off)) in
                let best_break = ref max_int in
                for k = off to off + len - 1 do
                  let l = arena.(k) in
                  let b = break_count st (Lit.var l) in
                  if b < !best_break then begin
                    best_break := b;
                    best := Lit.var l
                  end
                done;
                !best
              end
            in
            flip st v;
            walk (f + 1)
          end
        in
        match walk 0 with
        | Sat m -> Sat m
        | Unknown -> tries (t + 1)
      end
    in
    let result = if nclauses = 0 then Sat (Array.make nvars false) else tries 0 in
    (result, !flips)
  end
