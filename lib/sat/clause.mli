(** Flat clause arena for the CDCL solver.

    All clauses — problem and learnt — live in one growable int array as
    [size; flags; activity; lit0; lit1; ...]. A clause reference ({!cref})
    is the word offset of its header, so the clause database is a value type
    for its consumers: watch lists and reason slots store plain ints, and
    propagation walks contiguous memory instead of chasing boxed records.

    Deletion marks a clause and accounts its words as {!wasted}; the solver
    compacts the database with {!reloc} (copying live clauses into a fresh
    arena and leaving forwarding pointers) instead of letting lazily-deleted
    garbage linger in watch lists.

    Clause activity is stored in an int header word via
    [Int64.bits_of_float] shifted right by one — non-negative floats keep
    their ordering under this encoding and lose only the least significant
    mantissa bit, which is irrelevant for a reduction heuristic. *)

type cref = int
(** Word offset of a clause header in the arena. *)

val cref_undef : cref
(** Sentinel (-1) for "no clause", used in reason slots. *)

val header_words : int
(** Words before the first literal of a clause (3: size, flags, activity). *)

type t
(** The arena. *)

val create : ?capacity:int -> unit -> t
val fill : t -> int
(** Words in use (including deleted clauses not yet compacted). *)

val wasted : t -> int
(** Words occupied by deleted clauses; reclaimed by compaction. *)

val raw : t -> int array
(** The backing array, for bounds-check-conscious hot loops ([propagate]).
    Layout per clause at cref [c]: [raw.(c)] = size, [raw.(c+1)] = flags,
    [raw.(c+2)] = activity bits, literals from [c + header_words]. The array
    is replaced whenever the arena grows or is compacted — never hold it
    across an {!alloc} or {!reloc}. *)

val alloc : ?learnt:bool -> t -> Lit.t array -> cref
(** Append a clause; activity 0, LBD 0. *)

val size : t -> cref -> int
val lit : t -> cref -> int -> Lit.t
val set_lit : t -> cref -> int -> Lit.t -> unit
val swap : t -> cref -> int -> int -> unit
val learnt : t -> cref -> bool
val deleted : t -> cref -> bool
val set_deleted : t -> cref -> unit
(** Marks the clause deleted and accounts its words as wasted. Idempotent.
    The caller is responsible for detaching it from watch lists (or
    rebuilding them) before propagation runs again. *)

val lbd : t -> cref -> int
val set_lbd : t -> cref -> int -> unit
val activity : t -> cref -> float
val set_activity : t -> cref -> float -> unit
val to_list : t -> cref -> Lit.t list

val reloc : src:t -> dst:t -> cref -> cref
(** [reloc ~src ~dst c] copies clause [c] into [dst] (once: subsequent calls
    return the same forwarding target) and returns its new cref. Only live
    clauses may be relocated; compaction drops deleted ones by never
    relocating them. *)

val pp : t -> Format.formatter -> cref -> unit
(** Space-separated DIMACS literals, without the trailing 0. *)
