let lbd_buckets = 16

type t = {
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learnt_clauses : int;
  mutable learnt_literals : int;
  mutable deleted_clauses : int;
  mutable max_decision_level : int;
  mutable inprocess_rounds : int;
  mutable inprocess_strengthened : int;
  mutable inprocess_literals : int;
  lbd_hist : int array;
  mutable peak_heap_words : int;
}

let create () =
  {
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt_clauses = 0;
    learnt_literals = 0;
    deleted_clauses = 0;
    max_decision_level = 0;
    inprocess_rounds = 0;
    inprocess_strengthened = 0;
    inprocess_literals = 0;
    lbd_hist = Array.make lbd_buckets 0;
    peak_heap_words = 0;
  }

let bump_lbd t lbd =
  let i = if lbd >= lbd_buckets then lbd_buckets - 1 else max 0 lbd in
  t.lbd_hist.(i) <- t.lbd_hist.(i) + 1

let note_heap_words t words =
  if words > t.peak_heap_words then t.peak_heap_words <- words

let pp fmt s =
  Format.fprintf fmt
    "decisions=%d propagations=%d conflicts=%d restarts=%d learnt=%d \
     deleted=%d max_level=%d inprocessed=%d/%d"
    s.decisions s.propagations s.conflicts s.restarts s.learnt_clauses
    s.deleted_clauses s.max_decision_level s.inprocess_strengthened
    s.inprocess_literals
