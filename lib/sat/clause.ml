(* Flat clause arena. One growable int array holds every clause as
   [size; flags; activity; lit0; lit1; ...]; a clause reference (cref) is the
   word offset of its header. Propagation walks contiguous memory and the
   whole database is compacted (not lazily swept) when clauses die. *)

type cref = int

let cref_undef = -1
let header_words = 3

(* flags word: bit 0 learnt, bit 1 deleted, bit 2 relocated (during GC the
   activity word of a relocated clause holds the forwarding cref), bits 3+
   the LBD. *)
let flag_learnt = 1
let flag_deleted = 2
let flag_reloced = 4
let lbd_shift = 3

type t = {
  mutable arena : int array;
  mutable fill : int;
  mutable wasted : int;
}

let create ?(capacity = 1024) () =
  { arena = Array.make (max capacity header_words) 0; fill = 0; wasted = 0 }

let fill t = t.fill
let wasted t = t.wasted
let raw t = t.arena

let ensure t extra =
  let cap = Array.length t.arena in
  if t.fill + extra > cap then begin
    let ncap = ref (2 * cap) in
    while t.fill + extra > !ncap do
      ncap := 2 * !ncap
    done;
    let narena = Array.make !ncap 0 in
    Array.blit t.arena 0 narena 0 t.fill;
    t.arena <- narena
  end

(* Clause activity lives in an int word. [Int64.bits_of_float] of a
   non-negative float has its top (sign) bit clear, so the value shifted
   right by one fits OCaml's 63-bit int; shifting back loses only the least
   significant mantissa bit — irrelevant for a reduction heuristic. *)
let bits_of_activity f = Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float f) 1)
let activity_of_bits b = Int64.float_of_bits (Int64.shift_left (Int64.of_int b) 1)

let size t c = t.arena.(c)
let lit t c i = t.arena.(c + header_words + i)
let set_lit t c i l = t.arena.(c + header_words + i) <- l

let swap t c i j =
  let base = c + header_words in
  let tmp = t.arena.(base + i) in
  t.arena.(base + i) <- t.arena.(base + j);
  t.arena.(base + j) <- tmp

let learnt t c = t.arena.(c + 1) land flag_learnt <> 0
let deleted t c = t.arena.(c + 1) land flag_deleted <> 0

let set_deleted t c =
  if not (deleted t c) then begin
    t.arena.(c + 1) <- t.arena.(c + 1) lor flag_deleted;
    t.wasted <- t.wasted + header_words + size t c
  end

let lbd t c = t.arena.(c + 1) lsr lbd_shift

let set_lbd t c lbd =
  t.arena.(c + 1) <- (lbd lsl lbd_shift) lor (t.arena.(c + 1) land (flag_learnt lor flag_deleted lor flag_reloced))

let activity t c = activity_of_bits t.arena.(c + 2)
let set_activity t c a = t.arena.(c + 2) <- bits_of_activity a

let alloc ?(learnt = false) t lits =
  let n = Array.length lits in
  ensure t (header_words + n);
  let c = t.fill in
  t.arena.(c) <- n;
  t.arena.(c + 1) <- (if learnt then flag_learnt else 0);
  t.arena.(c + 2) <- bits_of_activity 0.;
  Array.blit lits 0 t.arena (c + header_words) n;
  t.fill <- c + header_words + n;
  c

let to_list t c =
  let rec go i acc = if i < 0 then acc else go (i - 1) (lit t c i :: acc) in
  go (size t c - 1) []

(* GC support: copy a live clause into [dst] and leave a forwarding pointer
   behind (in the activity word) so shared references relocate to the same
   copy. The caller must not relocate deleted clauses. *)
let reloc ~src ~dst c =
  if src.arena.(c + 1) land flag_reloced <> 0 then src.arena.(c + 2)
  else begin
    let n = src.arena.(c) in
    ensure dst (header_words + n);
    let nc = dst.fill in
    Array.blit src.arena c dst.arena nc (header_words + n);
    dst.fill <- nc + header_words + n;
    src.arena.(c + 1) <- src.arena.(c + 1) lor flag_reloced;
    src.arena.(c + 2) <- nc;
    nc
  end

let pp t fmt c =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ' ')
    Lit.pp fmt (to_list t c)
