exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

(* Tokenise into ints, tracking line numbers for error messages; the header
   determines how many variables to allocate, and each 0 closes a clause. *)
let parse_lines lines =
  let cnf = Cnf.create () in
  let header = ref None in
  let current = ref [] in
  let nclauses = ref 0 in
  let handle_token lineno tok =
    match !header with
    | None -> fail lineno (Printf.sprintf "unexpected token %S before header" tok)
    | Some (nv, _) -> (
        match int_of_string_opt tok with
        | None -> fail lineno (Printf.sprintf "not an integer: %S" tok)
        | Some 0 ->
            Cnf.add_clause cnf (List.rev !current);
            incr nclauses;
            current := []
        | Some d ->
            if abs d > nv then
              fail lineno
                (Printf.sprintf "literal %d out of range (header says %d vars)" d nv);
            current := Lit.of_dimacs d :: !current)
  in
  let handle_line lineno line =
    let line = String.trim line in
    if line = "" then ()
    else if line.[0] = 'c' then ()
    else if line.[0] = 'p' then begin
      if !header <> None then fail lineno "duplicate header";
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ "p"; "cnf"; nv; nc ] -> (
          match (int_of_string_opt nv, int_of_string_opt nc) with
          | Some nv, Some nc when nv >= 0 && nc >= 0 ->
              header := Some (nv, nc);
              Cnf.ensure_vars cnf nv
          | _ -> fail lineno "malformed p cnf header")
      | _ -> fail lineno "malformed p cnf header"
    end
    else
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> "")
      |> List.iter (handle_token lineno)
  in
  List.iteri (fun i line -> handle_line (i + 1) line) lines;
  (match !header with
  | None -> raise (Parse_error "missing p cnf header")
  | Some (_, nc) ->
      if !current <> [] then
        raise (Parse_error "unterminated clause at end of input");
      if !nclauses <> nc then
        raise
          (Parse_error
             (Printf.sprintf "header declares %d clauses but %d were read" nc
                !nclauses)));
  cnf

let parse_string s = parse_lines (String.split_on_char '\n' s)

let parse_file path =
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  parse_lines lines

(* All writers share one Buffer-backed emitter iterating the arena directly:
   no per-clause array copies and no Printf formatting on the clause path. *)
let to_buffer buf ?(comments = []) cnf =
  List.iter
    (fun c ->
      Buffer.add_string buf "c ";
      Buffer.add_string buf c;
      Buffer.add_char buf '\n')
    comments;
  Buffer.add_string buf "p cnf ";
  Buffer.add_string buf (string_of_int (Cnf.num_vars cnf));
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (Cnf.num_clauses cnf));
  Buffer.add_char buf '\n';
  Cnf.iter_clauses' cnf ~f:(fun arena off len ->
      for k = off to off + len - 1 do
        Buffer.add_string buf (string_of_int (Lit.to_dimacs arena.(k)));
        Buffer.add_char buf ' '
      done;
      Buffer.add_string buf "0\n")

let buffer_for cnf = Buffer.create (64 + (4 * Cnf.num_lits cnf))

let output oc ?comments cnf =
  let buf = buffer_for cnf in
  to_buffer buf ?comments cnf;
  Buffer.output_buffer oc buf

let to_string ?comments cnf =
  let buf = buffer_for cnf in
  to_buffer buf ?comments cnf;
  Buffer.contents buf

let write_file path ?comments cnf =
  let oc = open_out path in
  output oc ?comments cnf;
  close_out oc
