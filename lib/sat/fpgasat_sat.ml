(** SAT substrate for the FPGA-routing-encodings reproduction.

    The paper solved its CNF instances with siege_v4 and MiniSat. No external
    solver is available in this environment, so this library provides a
    from-scratch CDCL solver ({!Solver}) with two presets mirroring those two
    solvers, a reference DPLL solver ({!Dpll}) used as a cross-check oracle,
    CNF construction ({!Cnf}) and DIMACS I/O ({!Dimacs_cnf}), DRAT proof
    traces ({!Proof}) with an independent forward checker ({!Drat_check}),
    a preprocessor ({!Simplify}), and WalkSAT local search ({!Walksat}). *)

module Lit = Lit
module Clause = Clause
module Cnf = Cnf
module Dimacs_cnf = Dimacs_cnf
module Vec = Vec
module Heap = Heap
module Luby = Luby
module Event = Event
module Solver = Solver
module Dpll = Dpll
module Proof = Proof
module Drat_check = Drat_check
module Simplify = Simplify
module Walksat = Walksat
module Stats = Stats
